package netsim

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

func testTrialConfig() TrialConfig {
	return TrialConfig{
		Link:       Link{OneWay: 7750 * time.Microsecond}, // 31 ms per 4 crossings
		Solver:     SimSolver{HashRate: 27000},
		IssueTime:  100 * time.Microsecond,
		VerifyTime: 100 * time.Microsecond,
	}
}

func TestLinkValidateAndDelay(t *testing.T) {
	if err := (Link{OneWay: -time.Second}).Validate(); err == nil {
		t.Error("negative one-way accepted")
	}
	if err := (Link{OneWay: time.Second, Jitter: -time.Second}).Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
	rng := rand.New(rand.NewPCG(1, 1))
	l := Link{OneWay: 10 * time.Millisecond}
	if got := l.Delay(rng); got != 10*time.Millisecond {
		t.Errorf("jitterless Delay = %v", got)
	}
	if got := l.RTT(); got != 20*time.Millisecond {
		t.Errorf("RTT = %v", got)
	}
	jl := Link{OneWay: 10 * time.Millisecond, Jitter: 3 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := jl.Delay(rng)
		if d < 7*time.Millisecond || d > 13*time.Millisecond {
			t.Fatalf("jittered delay %v outside [7ms, 13ms]", d)
		}
	}
	// Jitter larger than the base must floor at zero, not go negative.
	ext := Link{OneWay: time.Millisecond, Jitter: 10 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := ext.Delay(rng); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

func TestRunTrialValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	bad := testTrialConfig()
	bad.Solver.HashRate = 0
	if _, err := RunTrial(bad, 1, rng); err == nil {
		t.Error("invalid solver accepted")
	}
	bad = testTrialConfig()
	bad.IssueTime = -time.Second
	if _, err := RunTrial(bad, 1, rng); err == nil {
		t.Error("negative issue time accepted")
	}
	if _, err := RunTrial(testTrialConfig(), 0, rng); err == nil {
		t.Error("difficulty 0 accepted")
	}
}

func TestRunTrialBreakdownSumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	b, err := RunTrial(testTrialConfig(), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := b.Request + b.Issue + b.Challenge + b.Solve + b.Submit + b.Verify + b.Response
	if b.Total() != sum {
		t.Fatalf("Total() = %v, parts sum to %v", b.Total(), sum)
	}
	if b.Solve <= 0 {
		t.Fatalf("Solve = %v, want > 0", b.Solve)
	}
}

// The calibration anchor of experiment E2: a 1-difficult trial under the
// calibrated environment lands at the paper's ~31 ms (network dominated).
func TestRunTrialCalibrationAnchor(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var sum time.Duration
	const n = 500
	for i := 0; i < n; i++ {
		b, err := RunTrial(testTrialConfig(), 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += b.Total()
	}
	meanMS := float64(sum) / n / float64(time.Millisecond)
	if math.Abs(meanMS-31.3) > 1.0 {
		t.Fatalf("1-difficult mean latency = %.2f ms, want ≈ 31 ms", meanMS)
	}
}

// Latency must grow monotonically (in median) with difficulty — the shape
// of Figure 2.
func TestRunTrialLatencyGrowsWithDifficulty(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	median := func(d int) time.Duration {
		samples := make([]time.Duration, 201)
		for i := range samples {
			b, err := RunTrial(testTrialConfig(), d, rng)
			if err != nil {
				t.Fatal(err)
			}
			samples[i] = b.Total()
		}
		for i := 1; i < len(samples); i++ {
			for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
				samples[j], samples[j-1] = samples[j-1], samples[j]
			}
		}
		return samples[len(samples)/2]
	}
	m5, m10, m15 := median(5), median(10), median(15)
	if !(m5 < m10 && m10 < m15) {
		t.Fatalf("medians not increasing: d5=%v d10=%v d15=%v", m5, m10, m15)
	}
	// Policy 2's worst case (d=15) should land in the paper's high-hundreds
	// of milliseconds.
	if m15 < 500*time.Millisecond || m15 > 1500*time.Millisecond {
		t.Fatalf("d=15 median = %v, want ~0.9 s scale", m15)
	}
}
