package netsim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

// Property: every trial breakdown component is non-negative and the total
// equals the sum, for random (valid) environments and difficulties.
func TestRunTrialInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	f := func(onewayMS uint16, jitterMS uint8, dRaw uint8) bool {
		cfg := TrialConfig{
			Link: Link{
				OneWay: time.Duration(onewayMS%100) * time.Millisecond,
				Jitter: time.Duration(jitterMS%20) * time.Millisecond,
			},
			Solver:     SimSolver{HashRate: 1000 + float64(onewayMS)},
			IssueTime:  time.Duration(jitterMS) * time.Microsecond,
			VerifyTime: time.Duration(dRaw) * time.Microsecond,
		}
		d := 1 + int(dRaw%12)
		b, err := RunTrial(cfg, d, rng)
		if err != nil {
			return false
		}
		for _, part := range []time.Duration{
			b.Request, b.Issue, b.Challenge, b.Solve, b.Submit, b.Verify, b.Response,
		} {
			if part < 0 {
				return false
			}
		}
		return b.Total() == b.Request+b.Issue+b.Challenge+b.Solve+b.Submit+b.Verify+b.Response
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: event-loop execution order equals sorted schedule order for
// random schedules (determinism of the simulation heart).
func TestEventLoopOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		l := NewEventLoop(Start())
		type stamp struct {
			at  time.Time
			seq int
		}
		var fired []stamp
		for i, off := range offsets {
			at := Start().Add(time.Duration(off) * time.Millisecond)
			i := i
			if err := l.At(at, func() { fired = append(fired, stamp{at: l.Now(), seq: i}) }); err != nil {
				return false
			}
		}
		l.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at.Before(fired[i-1].at) {
				return false // time order violated
			}
			if fired[i].at.Equal(fired[i-1].at) && fired[i].seq < fired[i-1].seq {
				return false // FIFO tie-break violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Conservation: jobs enqueued = completed + dropped + still queued, after
// the loop drains.
func TestSimServerConservation(t *testing.T) {
	l := NewEventLoop(Start())
	s, err := NewSimServer(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	accepted := 0
	for i := 0; i < n; i++ {
		if s.Enqueue(netsimJob(time.Millisecond)) {
			accepted++
		}
	}
	l.Run()
	if got := int(s.Completed() + s.Dropped()); got != n {
		t.Fatalf("completed+dropped = %d, want %d", got, n)
	}
	if int(s.Completed()) != accepted {
		t.Fatalf("completed = %d, accepted %d", s.Completed(), accepted)
	}
}

// netsimJob builds a job without a completion callback.
func netsimJob(d time.Duration) Job { return Job{Service: d} }
