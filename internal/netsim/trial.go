package netsim

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// TrialConfig describes the environment for one full protocol round trip —
// the seven steps of the paper's Figure 1 collapsed into their latency
// components.
type TrialConfig struct {
	// Link models both directions of the client↔server path.
	Link Link

	// Solver models the client's hashing capability.
	Solver SimSolver

	// IssueTime is the server-side cost of scoring the request, consulting
	// the policy, and generating the challenge.
	IssueTime time.Duration

	// VerifyTime is the server-side cost of verifying a solution and
	// serving the response.
	VerifyTime time.Duration
}

// Validate rejects inconsistent configurations.
func (c TrialConfig) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if err := c.Solver.Validate(); err != nil {
		return err
	}
	if c.IssueTime < 0 || c.VerifyTime < 0 {
		return fmt.Errorf("netsim: negative server processing time")
	}
	return nil
}

// TrialBreakdown itemizes one round trip, so experiments can attribute
// latency to network, solving, and server time.
type TrialBreakdown struct {
	Request   time.Duration // client → server (step 1)
	Issue     time.Duration // AI model + policy + generation (steps 2–4)
	Challenge time.Duration // server → client (step 4)
	Solve     time.Duration // client-side search (step 5)
	Submit    time.Duration // client → server (step 5)
	Verify    time.Duration // verification + approval (steps 5–6)
	Response  time.Duration // server → client (step 7)
}

// Total sums the components.
func (b TrialBreakdown) Total() time.Duration {
	return b.Request + b.Issue + b.Challenge + b.Solve + b.Submit + b.Verify + b.Response
}

// RunTrial samples one complete challenge round at difficulty d: the
// end-to-end latency a client experiences between sending the original
// request and receiving the protected resource.
func RunTrial(cfg TrialConfig, d int, rng *rand.Rand) (TrialBreakdown, error) {
	if err := cfg.Validate(); err != nil {
		return TrialBreakdown{}, err
	}
	if d < 1 {
		return TrialBreakdown{}, fmt.Errorf("netsim: trial difficulty %d < 1", d)
	}
	return TrialBreakdown{
		Request:   cfg.Link.Delay(rng),
		Issue:     cfg.IssueTime,
		Challenge: cfg.Link.Delay(rng),
		Solve:     cfg.Solver.SolveTime(d, rng),
		Submit:    cfg.Link.Delay(rng),
		Verify:    cfg.VerifyTime,
		Response:  cfg.Link.Delay(rng),
	}, nil
}
