package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// EventLoop executes scheduled callbacks in virtual-time order. Ties are
// broken by scheduling order (FIFO), which keeps runs deterministic.
// EventLoop is single-goroutine by design: simulations are CPU-bound state
// machines, and determinism beats parallelism for experiments.
type EventLoop struct {
	clock  *VirtualClock
	events eventHeap
	seq    uint64
}

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// NewEventLoop returns a loop whose clock starts at start.
func NewEventLoop(start time.Time) *EventLoop {
	return &EventLoop{clock: NewVirtualClock(start)}
}

// Clock returns the loop's virtual clock.
func (l *EventLoop) Clock() *VirtualClock { return l.clock }

// Now reports the current virtual time.
func (l *EventLoop) Now() time.Time { return l.clock.Now() }

// At schedules fn at the absolute virtual time at. Scheduling into the
// past is an error: it would silently reorder causality.
func (l *EventLoop) At(at time.Time, fn func()) error {
	if fn == nil {
		return fmt.Errorf("netsim: nil event callback")
	}
	if at.Before(l.Now()) {
		return fmt.Errorf("netsim: schedule at %v is before now %v", at, l.Now())
	}
	heap.Push(&l.events, event{at: at, seq: l.seq, fn: fn})
	l.seq++
	return nil
}

// After schedules fn d from now; negative d clamps to now.
func (l *EventLoop) After(d time.Duration, fn func()) error {
	if d < 0 {
		d = 0
	}
	return l.At(l.Now().Add(d), fn)
}

// Pending reports the number of scheduled events.
func (l *EventLoop) Pending() int { return len(l.events) }

// Run processes events until none remain, returning how many ran.
func (l *EventLoop) Run() int {
	n := 0
	for len(l.events) > 0 {
		l.step()
		n++
	}
	return n
}

// RunUntil processes all events scheduled at or before deadline, then
// advances the clock to deadline. It returns the number of events run.
func (l *EventLoop) RunUntil(deadline time.Time) int {
	n := 0
	for len(l.events) > 0 && !l.events[0].at.After(deadline) {
		l.step()
		n++
	}
	l.clock.advanceTo(deadline)
	return n
}

// step pops and executes the earliest event.
func (l *EventLoop) step() {
	e := heap.Pop(&l.events).(event)
	l.clock.advanceTo(e.at)
	e.fn()
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
