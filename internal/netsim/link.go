package netsim

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Link models one network direction with a base one-way delay and uniform
// jitter. The paper's testbed RTT is folded into two Link crossings per
// direction pair; experiment E1 calibrates OneWay so a 1-difficult round
// trip lands at the paper's 31 ms anchor.
type Link struct {
	// OneWay is the base one-way propagation + transmission delay.
	OneWay time.Duration

	// Jitter is the half-width of the uniform delay perturbation: each
	// crossing takes OneWay + U(−Jitter, +Jitter), floored at zero.
	Jitter time.Duration
}

// Validate rejects physically meaningless links.
func (l Link) Validate() error {
	if l.OneWay < 0 {
		return fmt.Errorf("netsim: negative one-way delay %v", l.OneWay)
	}
	if l.Jitter < 0 {
		return fmt.Errorf("netsim: negative jitter %v", l.Jitter)
	}
	return nil
}

// Delay samples one crossing of the link.
func (l Link) Delay(rng *rand.Rand) time.Duration {
	if l.Jitter == 0 {
		return l.OneWay
	}
	j := time.Duration((rng.Float64()*2 - 1) * float64(l.Jitter))
	d := l.OneWay + j
	if d < 0 {
		return 0
	}
	return d
}

// RTT reports the nominal round-trip time (two crossings, no jitter).
func (l Link) RTT() time.Duration { return 2 * l.OneWay }
