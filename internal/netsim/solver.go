package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// SimSolver models a client CPU solving PoW puzzles at a fixed hash rate.
// A d-difficult puzzle needs a Geometric(p = 2^−d) number of hash
// evaluations; dividing by the hash rate gives the solve time. This is the
// same process a real solver executes (internal/puzzle), so the simulated
// and real modes of experiment E2 agree in distribution.
type SimSolver struct {
	// HashRate is the client's hash throughput in evaluations per second.
	HashRate float64
}

// Validate rejects non-positive hash rates.
func (s SimSolver) Validate() error {
	if s.HashRate <= 0 || math.IsNaN(s.HashRate) || math.IsInf(s.HashRate, 0) {
		return fmt.Errorf("netsim: hash rate must be positive and finite, got %v", s.HashRate)
	}
	return nil
}

// Attempts samples the number of hash evaluations needed for a d-difficult
// puzzle: a geometric draw with success probability 2^−d, sampled by
// inversion (⌊ln U / ln(1−p)⌋ + 1), which is exact for all d ≥ 1.
func (s SimSolver) Attempts(d int, rng *rand.Rand) float64 {
	p := math.Exp2(-float64(d))
	u := rng.Float64()
	for u == 0 { // ln(0) is −inf; redraw the measure-zero corner
		u = rng.Float64()
	}
	return math.Floor(math.Log(u)/math.Log1p(-p)) + 1
}

// SolveTime samples the wall-clock duration of one solve.
func (s SimSolver) SolveTime(d int, rng *rand.Rand) time.Duration {
	sec := s.Attempts(d, rng) / s.HashRate
	if sec > float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// ExpectedAttempts reports the mean of the attempt distribution (2^d).
func ExpectedAttempts(d int) float64 { return math.Exp2(float64(d)) }

// MedianAttempts reports the median of the attempt distribution,
// ≈ ln(2)·2^d for large d.
func MedianAttempts(d int) float64 {
	p := math.Exp2(-float64(d))
	return math.Ceil(-math.Ln2 / math.Log1p(-p))
}
