package netsim

import (
	"testing"
	"time"
)

func TestNewSimServerRequiresLoop(t *testing.T) {
	if _, err := NewSimServer(nil, 0); err == nil {
		t.Fatal("nil loop accepted")
	}
}

func TestSimServerProcessesFIFO(t *testing.T) {
	l := NewEventLoop(Start())
	s, err := NewSimServer(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	var done []int
	var doneAt []time.Time
	for i := 0; i < 3; i++ {
		i := i
		ok := s.Enqueue(Job{Service: time.Second, Done: func() {
			done = append(done, i)
			doneAt = append(doneAt, l.Now())
		}})
		if !ok {
			t.Fatalf("job %d dropped", i)
		}
	}
	l.Run()
	if len(done) != 3 || done[0] != 0 || done[1] != 1 || done[2] != 2 {
		t.Fatalf("completion order = %v", done)
	}
	for i, at := range doneAt {
		want := Start().Add(time.Duration(i+1) * time.Second)
		if !at.Equal(want) {
			t.Fatalf("job %d done at %v, want %v (sequential service)", i, at, want)
		}
	}
	if got := s.Completed(); got != 3 {
		t.Fatalf("Completed() = %d", got)
	}
}

func TestSimServerQueueBoundDrops(t *testing.T) {
	l := NewEventLoop(Start())
	s, err := NewSimServer(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 5; i++ {
		if s.Enqueue(Job{Service: time.Second}) {
			accepted++
		}
	}
	// First job goes into service immediately, two queue, two drop.
	if accepted != 3 {
		t.Fatalf("accepted = %d, want 3", accepted)
	}
	if got := s.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	if got := s.QueueLen(); got != 2 {
		t.Fatalf("QueueLen() = %d, want 2", got)
	}
	l.Run()
	if got := s.Completed(); got != 3 {
		t.Fatalf("Completed() = %d, want 3", got)
	}
	if got := s.PeakQueue(); got != 2 {
		t.Fatalf("PeakQueue() = %d, want 2", got)
	}
}

func TestSimServerUtilization(t *testing.T) {
	l := NewEventLoop(Start())
	s, err := NewSimServer(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Enqueue(Job{Service: 2 * time.Second})
	l.Run()
	// 2s busy; clock is at 2s: fully utilized so far.
	if got := s.Utilization(); got != 1 {
		t.Fatalf("Utilization() = %v, want 1", got)
	}
	l.RunUntil(Start().Add(8 * time.Second)) // idle to t=8
	if got := s.Utilization(); got != 0.25 {
		t.Fatalf("Utilization() = %v, want 0.25", got)
	}
}

func TestSimServerZeroServiceJobs(t *testing.T) {
	l := NewEventLoop(Start())
	s, err := NewSimServer(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	s.Enqueue(Job{Service: -time.Second, Done: func() { ran = true }}) // clamps to 0
	l.Run()
	if !ran {
		t.Fatal("zero-service job did not complete")
	}
}

func TestSimServerInterleavedArrivals(t *testing.T) {
	l := NewEventLoop(Start())
	s, err := NewSimServer(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	var finished []time.Time
	// First job at t=0 (3s service), second arrives at t=1 (1s service).
	s.Enqueue(Job{Service: 3 * time.Second, Done: func() { finished = append(finished, l.Now()) }})
	if err := l.At(Start().Add(time.Second), func() {
		s.Enqueue(Job{Service: time.Second, Done: func() { finished = append(finished, l.Now()) }})
	}); err != nil {
		t.Fatal(err)
	}
	l.Run()
	if len(finished) != 2 {
		t.Fatalf("finished = %v", finished)
	}
	if !finished[0].Equal(Start().Add(3 * time.Second)) {
		t.Fatalf("first done at %v, want t+3s", finished[0])
	}
	if !finished[1].Equal(Start().Add(4 * time.Second)) {
		t.Fatalf("second done at %v, want t+4s (queued behind first)", finished[1])
	}
}
