package netsim

import (
	"testing"
	"time"
)

func TestVirtualClockAdvancesMonotonically(t *testing.T) {
	c := NewVirtualClock(Start())
	c.advanceTo(Start().Add(5 * time.Second))
	if got := c.Now(); !got.Equal(Start().Add(5 * time.Second)) {
		t.Fatalf("Now() = %v", got)
	}
	c.advanceTo(Start().Add(2 * time.Second)) // backward: ignored
	if got := c.Now(); !got.Equal(Start().Add(5 * time.Second)) {
		t.Fatalf("clock moved backward to %v", got)
	}
}

func TestEventLoopRunsInTimeOrder(t *testing.T) {
	l := NewEventLoop(Start())
	var order []int
	mustAt := func(sec int, id int) {
		t.Helper()
		if err := l.At(Start().Add(time.Duration(sec)*time.Second), func() {
			order = append(order, id)
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(30, 3)
	mustAt(10, 1)
	mustAt(20, 2)
	if n := l.Run(); n != 3 {
		t.Fatalf("Run() = %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := l.Now(); !got.Equal(Start().Add(30 * time.Second)) {
		t.Fatalf("clock after run = %v", got)
	}
}

func TestEventLoopTieBreakFIFO(t *testing.T) {
	l := NewEventLoop(Start())
	var order []int
	at := Start().Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		if err := l.At(at, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	l.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestEventLoopRejectsPastAndNil(t *testing.T) {
	l := NewEventLoop(Start())
	if err := l.At(Start().Add(-time.Second), func() {}); err == nil {
		t.Error("past event accepted")
	}
	if err := l.At(Start().Add(time.Second), nil); err == nil {
		t.Error("nil callback accepted")
	}
	// Negative After clamps to now rather than failing: relative intent.
	ran := false
	if err := l.After(-5*time.Second, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	l.Run()
	if !ran {
		t.Error("clamped event did not run")
	}
}

func TestEventLoopCascadingEvents(t *testing.T) {
	l := NewEventLoop(Start())
	depth := 0
	var schedule func()
	schedule = func() {
		if depth < 10 {
			depth++
			if err := l.After(time.Second, schedule); err != nil {
				t.Error(err)
			}
		}
	}
	schedule()
	if n := l.Run(); n != 10 {
		t.Fatalf("Run() = %d, want 10 cascaded events", n)
	}
	if got := l.Now(); !got.Equal(Start().Add(10 * time.Second)) {
		t.Fatalf("clock = %v", got)
	}
}

func TestEventLoopRunUntil(t *testing.T) {
	l := NewEventLoop(Start())
	ran := make(map[int]bool)
	for _, sec := range []int{1, 2, 3, 10} {
		sec := sec
		if err := l.At(Start().Add(time.Duration(sec)*time.Second), func() { ran[sec] = true }); err != nil {
			t.Fatal(err)
		}
	}
	n := l.RunUntil(Start().Add(5 * time.Second))
	if n != 3 {
		t.Fatalf("RunUntil = %d events, want 3", n)
	}
	if ran[10] {
		t.Fatal("future event ran early")
	}
	if got := l.Now(); !got.Equal(Start().Add(5 * time.Second)) {
		t.Fatalf("clock = %v, want deadline", got)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", l.Pending())
	}
}
