// Package netsim is a deterministic discrete-event network simulator: a
// virtual clock, an event loop, latency-modeled links, a stochastic
// PoW-solver model, and a single-queue server model.
//
// The paper measures its framework on an unspecified client/server testbed;
// netsim is the substitute substrate (DESIGN.md §4): every latency the
// paper's Figure 2 reports decomposes into network crossings, puzzle solve
// time (a geometric number of hash evaluations at the client's hash rate),
// and server processing. The simulator samples exactly that process, with
// every random draw fed from injected PCG generators, so experiments
// reproduce bit-for-bit given a seed.
package netsim

import (
	"sync"
	"time"
)

// SimStart is the canonical virtual-time origin used by experiments: the
// paper's arXiv submission date. Any fixed instant works; fixing one makes
// logs and golden files stable.
var simStart = time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)

// Start returns the canonical virtual-time origin.
func Start() time.Time { return simStart }

// VirtualClock is a manually-advanced clock. Reads are cheap and
// concurrent; only the event loop advances it.
type VirtualClock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewVirtualClock returns a clock set to start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now reports the current virtual time. The method value c.Now is a valid
// `func() time.Time` and plugs directly into the puzzle issuer/verifier.
func (c *VirtualClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// advanceTo moves the clock forward; it never moves backward.
func (c *VirtualClock) advanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}
