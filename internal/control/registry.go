package control

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"aipow/internal/cluster"
	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/feedback"
	"aipow/internal/obs"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
	"aipow/internal/reputation"
)

// ScorerFactory builds an AI model from a component spec's numeric
// parameters. Factories must reject unknown parameter names.
type ScorerFactory func(params map[string]float64) (core.Scorer, error)

// SourceFactory builds a per-request attribute source. It receives the
// registry's shared behavior tracker so deployment-specific sources
// (feed stores, combined static+live sources) can layer onto the same
// live behavioral state every pipeline observes into.
type SourceFactory func(params map[string]float64, tracker *features.Tracker) (features.Source, error)

// Registry resolves component names in pipeline specs and owns the shared
// long-lived state every pipeline it builds rides on: one root HMAC key,
// one behavior tracker (so behavioral history survives swaps and is
// shared across per-route pipelines), and one clock.
//
// Each pipeline signs with a key derived from the root key and the
// pipeline's name. Same name ⇒ same key, so a pipeline rebuilt by a
// reconfiguration keeps accepting challenges its predecessor issued;
// different names ⇒ different keys, so a cheap challenge solved on a
// lenient route can never be redeemed on a stricter one — per-route
// difficulty is enforced, not advisory.
//
// It ships with the policy registry's built-ins and a "tracker" source
// (the live tracker alone); deployments register their scorers (e.g. a
// trained DAbR model) and richer sources. A Registry is safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	scorers map[string]ScorerFactory
	sources map[string]SourceFactory

	policies *policy.Registry
	key      []byte
	tracker  *features.Tracker
	now      func() time.Time
	nodeID   string
	events   obs.Sink

	// windowed holds the per-pipeline trackers behind `window <duration>`
	// and `redeem(half-life=…)` pipeline specs, keyed by (window span,
	// evidence half-life): pipelines declaring equal keys share one
	// tracker (and with it behavioral history), pipelines declaring
	// different keys get different decay horizons — the knobs the shared
	// tracker used to force deployment-wide. Like the default tracker,
	// these trackers persist across applies. windowOrder tracks creation
	// order for the FIFO bound below.
	windowed    map[trackerKey]*features.Tracker
	windowOrder []trackerKey
}

// trackerKey identifies a shared per-pipeline tracker: the sliding-window
// span (zero: the default window) and the solve-evidence half-life (zero:
// the default tracker's half-life). Both are tracker construction state,
// which is why `window` and `redeem half-life` are not hot-swappable.
type trackerKey struct {
	window   time.Duration
	halfLife time.Duration
}

// maxTrackerWindows bounds how many distinct per-pipeline tracker windows
// one registry retains for sharing. Each tracker is a full
// capacity-bounded state store, so the set is FIFO-bounded like the
// store/layout caches: when an operator's window tuning has churned past
// the bound, the oldest-created window is retired from the share map —
// pipelines already built on it keep their tracker untouched, but a
// *future* pipeline declaring that span starts a fresh one (losing
// cross-build history sharing for that window, never failing the apply).
const maxTrackerWindows = 8

// trackerWindowBuckets is the bucket count of per-window trackers,
// matching the default tracker's window:bucket granularity ratio.
const trackerWindowBuckets = 12

// RegistryOption customizes NewRegistry.
type RegistryOption func(*Registry)

// WithRegistryTracker sets the shared behavior tracker (default: a fresh
// tracker with default sizing).
func WithRegistryTracker(t *features.Tracker) RegistryOption {
	return func(r *Registry) { r.tracker = t }
}

// WithRegistryClock injects the time source every built pipeline uses
// (default time.Now; simulations pass a virtual clock).
func WithRegistryClock(now func() time.Time) RegistryOption {
	return func(r *Registry) { r.now = now }
}

// WithRegistryPolicies replaces the policy registry (default: the policy
// package's built-ins).
func WithRegistryPolicies(p *policy.Registry) RegistryOption {
	return func(r *Registry) { r.policies = p }
}

// WithRegistryNodeID names this process in cluster exchange frames
// (default "local"). Fleet deployments must give every member a unique
// id — powserver defaults it to the hostname.
func WithRegistryNodeID(id string) RegistryOption {
	return func(r *Registry) {
		if id != "" {
			r.nodeID = id
		}
	}
}

// WithRegistryEvents attaches the defense event sink every built pipeline
// emits into: adapt level transitions, cluster membership changes, and
// evidence flush stalls, each stamped with the pipeline name. The
// gatekeeper also reports spec applies and rollbacks through it. Nil (the
// default) drops all events.
func WithRegistryEvents(sink obs.Sink) RegistryOption {
	return func(r *Registry) { r.events = sink }
}

// NewRegistry returns a component registry sharing key, tracker, and clock
// across every pipeline it builds. The root key must be at least 16
// bytes: per-pipeline keys are derived from it by HMAC, which always
// yields full-length output, so the issuer's own minimum-length check
// could never catch a weak root.
func NewRegistry(key []byte, opts ...RegistryOption) (*Registry, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("control: registry requires an HMAC root key of at least 16 bytes, got %d", len(key))
	}
	r := &Registry{
		scorers:  make(map[string]ScorerFactory),
		sources:  make(map[string]SourceFactory),
		policies: policy.NewRegistry(),
		key:      key,
		now:      time.Now,
		nodeID:   "local",
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.tracker == nil {
		t, err := features.NewTracker()
		if err != nil {
			return nil, err
		}
		r.tracker = t
	}
	if err := r.RegisterSource("tracker", func(params map[string]float64, tracker *features.Tracker) (features.Source, error) {
		if err := policy.RejectUnknownParams(params); err != nil {
			return nil, err
		}
		return tracker, nil
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Tracker reports the shared behavior tracker.
func (r *Registry) Tracker() *features.Tracker { return r.tracker }

// trackerFor resolves a pipeline's behavior tracker: the shared default
// when the spec declares neither a window nor a redeem half-life,
// otherwise the per-key tracker for that (window, half-life) pair,
// created on first use and cached so same-key pipelines share state.
// Per-key trackers inherit the shared tracker's remaining sizing
// (capacity, summary staleness, and whichever of window/half-life the
// spec leaves zero) so the spec changes exactly the declared knobs
// instead of silently resetting an operator's tuning to defaults.
func (r *Registry) trackerFor(ps PipelineSpec) (*features.Tracker, error) {
	key := trackerKey{
		window:   time.Duration(ps.TrackerWindow),
		halfLife: time.Duration(ps.Redeem.halfLife()),
	}
	if key == (trackerKey{}) {
		return r.tracker, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.windowed[key]; ok {
		return t, nil
	}
	halfLife := key.halfLife
	if halfLife == 0 {
		halfLife = r.tracker.EvidenceHalfLife()
	}
	opts := []features.TrackerOption{
		features.WithCapacity(r.tracker.Capacity()),
		features.WithEvidenceHalfLife(halfLife),
		features.WithSummaryStaleness(r.tracker.SummaryStaleness()),
	}
	if key.window > 0 {
		opts = append(opts, features.WithWindow(key.window, trackerWindowBuckets))
	}
	t, err := features.NewTracker(opts...)
	if err != nil {
		return nil, fmt.Errorf("control: window %v / half-life %v tracker: %w", key.window, halfLife, err)
	}
	if r.windowed == nil {
		r.windowed = make(map[trackerKey]*features.Tracker, 1)
	}
	for len(r.windowed) >= maxTrackerWindows {
		oldest := r.windowOrder[0]
		r.windowOrder = r.windowOrder[1:]
		delete(r.windowed, oldest) // FIFO: see maxTrackerWindows
	}
	r.windowed[key] = t
	r.windowOrder = append(r.windowOrder, key)
	return t, nil
}

// pipelineKey derives a pipeline's signing key from the root key and the
// pipeline name (HMAC-SHA256, domain-separated). Stable across rebuilds
// of the same pipeline, distinct across pipelines.
func (r *Registry) pipelineKey(name string) []byte {
	mac := hmac.New(sha256.New, r.key)
	mac.Write([]byte("aipow-pipeline-key:"))
	mac.Write([]byte(name))
	return mac.Sum(nil)
}

// issuanceOptions is the single factory through which every pipeline's
// issuer/verifier identity is constructed: the derived per-pipeline
// signing key and the parsed puzzle backend, bundled into one core option
// slice. Routing all construction through here keeps the two from
// drifting apart — a pipeline can never end up signing with one route's
// key while issuing another route's backend, and the cross-route
// redemption guarantee (different name ⇒ different key ⇒ tokens do not
// transfer) holds for every backend alike.
func (r *Registry) issuanceOptions(ps PipelineSpec) ([]core.Option, error) {
	opts := []core.Option{core.WithKey(r.pipelineKey(ps.Name))}
	backend, err := puzzle.ParseBackendSpec(ps.Puzzle)
	if err != nil {
		return nil, fmt.Errorf("control: pipeline %q puzzle: %w", ps.Name, err)
	}
	if ps.Puzzle != "" {
		opts = append(opts, core.WithPuzzleBackend(backend))
	}
	return opts, nil
}

// Policies reports the policy registry, for registering custom policies.
func (r *Registry) Policies() *policy.Registry { return r.policies }

// RegisterScorer adds a named scorer factory. Re-registering a name is an
// error: silent overrides hide configuration mistakes.
func (r *Registry) RegisterScorer(name string, f ScorerFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("control: scorer registration requires a name and factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.scorers[name]; dup {
		return fmt.Errorf("control: scorer %q already registered", name)
	}
	r.scorers[name] = f
	return nil
}

// RegisterSource adds a named source factory. Re-registering a name is an
// error.
func (r *Registry) RegisterSource(name string, f SourceFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("control: source registration requires a name and factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("control: source %q already registered", name)
	}
	r.sources[name] = f
	return nil
}

// ScorerNames reports registered scorer names, sorted.
func (r *Registry) ScorerNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.scorers)
}

// SourceNames reports registered source names, sorted.
func (r *Registry) SourceNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.sources)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// newScorer resolves a scorer component spec.
func (r *Registry) newScorer(spec string) (core.Scorer, error) {
	name, params, err := policy.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("control: scorer spec: %w", err)
	}
	r.mu.RLock()
	f, ok := r.scorers[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("control: unknown scorer %q (known: %s)",
			name, strings.Join(r.ScorerNames(), ", "))
	}
	s, err := f(params)
	if err != nil {
		return nil, fmt.Errorf("control: scorer %q: %w", name, err)
	}
	if s == nil {
		return nil, fmt.Errorf("control: scorer %q factory returned nil", name)
	}
	return s, nil
}

// newSource resolves a source component spec ("" defaults to "tracker")
// over the pipeline's behavior tracker.
func (r *Registry) newSource(spec string, tracker *features.Tracker) (features.Source, error) {
	if spec == "" {
		spec = "tracker"
	}
	name, params, err := policy.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("control: source spec: %w", err)
	}
	r.mu.RLock()
	f, ok := r.sources[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("control: unknown source %q (known: %s)",
			name, strings.Join(r.SourceNames(), ", "))
	}
	s, err := f(params, tracker)
	if err != nil {
		return nil, fmt.Errorf("control: source %q: %w", name, err)
	}
	if s == nil {
		return nil, fmt.Errorf("control: source %q factory returned nil", name)
	}
	return s, nil
}

// newPolicy resolves a spec's policy — registry syntax or inline rules —
// and finishes it with the pipeline's shared wrapping.
func (r *Registry) newPolicy(ps PipelineSpec, load policy.LoadFunc) (policy.Policy, error) {
	var pol policy.Policy
	var err error
	if ps.PolicyRules != "" {
		pol, err = policy.ParseRules(ps.PolicyRules)
	} else {
		pol, err = r.policies.New(ps.Policy)
	}
	if err != nil {
		return nil, fmt.Errorf("control: pipeline %q policy: %w", ps.Name, err)
	}
	return r.finishPolicy(ps, pol, load)
}

// finishPolicy applies the wrapping every policy serving ps receives —
// the declared one and each adapt escalation rung alike: the
// load-adaptive shift (when the adapt section declares load-shift, fed by
// the pipeline's signal plane) and the clamp to [1, max-difficulty] so
// the worst score still yields a challenge rather than an over-cap
// issuance error.
func (r *Registry) finishPolicy(ps PipelineSpec, pol policy.Policy, load policy.LoadFunc) (policy.Policy, error) {
	if ps.Adapt != nil && ps.Adapt.LoadShift > 0 {
		shifted, err := policy.NewLoadAdaptive(pol, load, ps.Adapt.LoadShift)
		if err != nil {
			return nil, fmt.Errorf("control: pipeline %q: load-shift: %w", ps.Name, err)
		}
		pol = shifted
	}
	clamped, err := policy.NewClamp(pol, 1, ps.MaxDifficulty)
	if err != nil {
		return nil, fmt.Errorf("control: pipeline %q: clamp to max-difficulty %d: %w", ps.Name, ps.MaxDifficulty, err)
	}
	return clamped, nil
}

// newController compiles a spec's adapt section into a feedback
// controller over the given base policy. The controller is returned
// unbound; the pipeline attaches it (target + counter source) at install
// time. events receives each level transition (Pipeline.adaptEvents: the
// trace rung follows the level, the registry sink gets the event).
func (r *Registry) newController(ps PipelineSpec, base policy.Policy, load policy.LoadFunc, events obs.Sink) (*feedback.Controller, error) {
	a := ps.Adapt
	rules := make([]feedback.Rule, 0, len(a.Rules))
	for _, spec := range a.Rules {
		rule, err := feedback.ParseRule(spec)
		if err != nil {
			return nil, fmt.Errorf("control: pipeline %q adapt: %w", ps.Name, err)
		}
		rules = append(rules, rule)
	}
	ctrl, err := feedback.New(feedback.Config{
		Interval: time.Duration(a.Interval),
		Sampler: feedback.SamplerConfig{
			Capacity:       a.Capacity,
			HardDifficulty: a.Hard,
			Window:         a.Window,
		},
		Rules: rules,
		Compile: func(spec string) (policy.Policy, error) {
			pol, err := r.policies.New(spec)
			if err != nil {
				return nil, err
			}
			return r.finishPolicy(ps, pol, load)
		},
		Base:   base,
		Events: events,
	})
	if err != nil {
		return nil, fmt.Errorf("control: pipeline %q adapt: %w", ps.Name, err)
	}
	return ctrl, nil
}

// redeemScorer wraps a resolved scorer with the spec's behavioral
// redemption. The half-life parameter is absent here deliberately: it is
// tracker state, applied by trackerFor.
func (r *Registry) redeemScorer(ps PipelineSpec, scorer core.Scorer) (core.Scorer, error) {
	vs, ok := scorer.(features.VectorScorer)
	if !ok {
		return nil, fmt.Errorf("control: pipeline %q redeem: scorer %q does not support the vector fast path",
			ps.Name, ps.Scorer)
	}
	var opts []reputation.DecayOption
	if ps.Redeem.Max > 0 {
		opts = append(opts, reputation.WithMaxRedemption(ps.Redeem.Max))
	}
	if ps.Redeem.HalfCredit > 0 {
		opts = append(opts, reputation.WithHalfCredit(ps.Redeem.HalfCredit))
	}
	dec, err := reputation.NewDecay(vs, opts...)
	if err != nil {
		return nil, fmt.Errorf("control: pipeline %q redeem: %w", ps.Name, err)
	}
	return dec, nil
}

// DefaultMaxDifficulty is the issuance cap when a spec leaves
// max-difficulty unset — high enough to price out abusive clients
// (seconds of compute), low enough that a misscored legitimate client is
// delayed, not locked out.
const DefaultMaxDifficulty = 22

// withDefaults resolves a spec's zero values to their effective settings.
func (ps PipelineSpec) withDefaults() PipelineSpec {
	if ps.MaxDifficulty == 0 {
		ps.MaxDifficulty = DefaultMaxDifficulty
	}
	if ps.TTL == 0 {
		ps.TTL = Duration(puzzle.DefaultTTL)
	}
	if ps.ClockSkew == 0 {
		ps.ClockSkew = Duration(2 * time.Second)
	}
	return ps
}

// pipelineEvents wraps the registry's event sink to stamp the pipeline
// name onto every event; nil when no sink is configured, so emitters can
// skip event assembly entirely.
func (r *Registry) pipelineEvents(name string) obs.Sink {
	sink := r.events
	if sink == nil {
		return nil
	}
	return func(e obs.Event) {
		e.Pipeline = name
		sink(e)
	}
}

// newTraceRing compiles a spec's observe section into a trace ring (nil
// without one), resolving zero parameters to the obs defaults.
func newTraceRing(o *ObserveSpec) *obs.TraceRing {
	if o == nil {
		return nil
	}
	sample, ring := o.TraceSample, o.TraceRing
	if sample == 0 {
		sample = obs.DefaultTraceSample
	}
	if ring == 0 {
		ring = obs.DefaultTraceRingSize
	}
	return obs.NewTraceRing(sample, ring)
}

// components compiles the hot-swappable component set of a spec over the
// pipeline's tracker, including the feedback controller when the spec has
// an adapt section. load feeds load-shifted policies and must outlive
// controller rebuilds (pipelines pass their stable load indirection);
// events is the controller's transition sink (Pipeline.adaptEvents).
func (r *Registry) components(ps PipelineSpec, load policy.LoadFunc, tracker *features.Tracker, events obs.Sink) (core.Scorer, policy.Policy, features.Source, *feedback.Controller, error) {
	scorer, err := r.newScorer(ps.Scorer)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if ps.Redeem != nil {
		scorer, err = r.redeemScorer(ps, scorer)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	pol, err := r.newPolicy(ps, load)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	source, err := r.newSource(ps.Source, tracker)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var ctrl *feedback.Controller
	if ps.Adapt != nil {
		ctrl, err = r.newController(ps, pol, load, events)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return scorer, pol, source, ctrl, nil
}

// Build compiles a pipeline spec into a runnable Pipeline: components
// resolved against the registry, assembled around a core.Framework wired
// to the shared key, the pipeline's tracker (the shared one, or a
// per-window tracker when the spec declares `window`), and the clock.
func (r *Registry) Build(ps PipelineSpec) (*Pipeline, error) {
	if err := ps.validate(); err != nil {
		return nil, err
	}
	ps = ps.withDefaults()
	tracker, err := r.trackerFor(ps)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{reg: r, tracker: tracker}
	scorer, pol, source, ctrl, err := r.components(ps, p.load, tracker, p.adaptEvents(ps.Name))
	if err != nil {
		return nil, err
	}
	opts, err := r.issuanceOptions(ps)
	if err != nil {
		return nil, err
	}
	opts = append(opts,
		core.WithScorer(scorer),
		core.WithPolicy(pol),
		core.WithSource(source),
		core.WithTracker(tracker),
		core.WithClock(r.now),
		core.WithTTL(time.Duration(ps.TTL)),
		core.WithMaxDifficulty(ps.MaxDifficulty),
		core.WithClockSkew(time.Duration(ps.ClockSkew)),
	)
	if sink := r.pipelineEvents(ps.Name); sink != nil {
		opts = append(opts, core.WithEventSink(sink))
	}
	if ps.Observe != nil {
		opts = append(opts, core.WithObserveTrace(newTraceRing(ps.Observe)))
	}
	switch {
	case ps.ReplayCache > 0:
		opts = append(opts, core.WithReplayCacheSize(ps.ReplayCache))
	case ps.ReplayCache < 0:
		opts = append(opts, core.WithReplayCacheSize(0))
	}
	if ps.AuthCacheSlots > 0 {
		opts = append(opts, core.WithAuthCacheSlots(ps.AuthCacheSlots))
	}
	if ps.BypassBelow != nil {
		opts = append(opts, core.WithBypassBelow(*ps.BypassBelow))
	}
	if ps.FailClosedScore != nil {
		opts = append(opts, core.WithFailClosedScore(*ps.FailClosedScore))
	}
	if ps.EvidenceBuffer != nil {
		opts = append(opts, core.WithEvidenceBuffer(ps.EvidenceBuffer.Size, time.Duration(ps.EvidenceBuffer.Interval)))
	}
	var node *cluster.Node
	if ps.Cluster != nil {
		node, err = cluster.NewNode(cluster.Config{
			Origin:       r.nodeID,
			Exchange:     time.Duration(ps.Cluster.Exchange),
			FilterBits:   ps.Cluster.FilterBits,
			FilterHashes: ps.Cluster.FilterHashes,
			// Retain through the full redemption window — TTL plus skew on
			// both ends — so the freshness check takes over exactly when
			// the filter may forget.
			Retain:     time.Duration(ps.TTL) + 2*time.Duration(ps.ClockSkew),
			Key:        r.pipelineKey(ps.Name),
			DeltaEvery: ps.Cluster.DeltaEvery,
			Now:        r.now,
			Events:     r.pipelineEvents(ps.Name),
		})
		if err != nil {
			return nil, fmt.Errorf("control: pipeline %q cluster: %w", ps.Name, err)
		}
		// The node becomes the verifier's fleet tag filter, and its
		// exchange loop stops with the framework: Pipeline.Close →
		// Framework.Close → registered closers.
		opts = append(opts, core.WithTagExchange(node), core.WithCloser(node.Close))
	}
	fw, err := core.New(opts...)
	if err != nil {
		return nil, fmt.Errorf("control: build pipeline %q: %w", ps.Name, err)
	}
	p.fw = fw
	p.node = node
	p.spec = ps
	if node != nil {
		node.BindLocal(fw, tracker)
		if len(ps.Cluster.Peers) > 0 {
			if err := node.Run(cluster.NewHTTPFetchers(ps.Cluster.Peers, r.pipelineKey(ps.Name), time.Duration(ps.Cluster.Exchange), ps.Cluster.DeltaEvery)); err != nil {
				return nil, fmt.Errorf("control: build pipeline %q: %w", ps.Name, err)
			}
		}
	}
	p.attachControllerLocked(ctrl)
	return p, nil
}
