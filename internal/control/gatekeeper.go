package control

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/feedback"
	"aipow/internal/metrics"
	"aipow/internal/obs"
	"aipow/internal/policy"
)

// Gatekeeper is the multi-tenant front of the control plane: it maps
// request classes — path prefixes and tenant keys — onto named pipelines
// built from one DeploymentSpec. Pipelines share the registry's behavior
// tracker by default, so one client's behavioral history follows it
// across route boundaries (pipelines declaring a `window` get a
// per-window tracker instead, shared among same-window pipelines); each
// pipeline signs challenges with its own name-derived key, so a cheap
// solve on a lenient route cannot be redeemed on a stricter one.
//
// Routing state lives in an immutable table behind an atomic pointer:
// Route is one atomic load, a tenant map lookup, and a short
// longest-prefix scan — no locks and no allocations on the request path.
// Apply builds the next table aside and swaps it in whole, so a request
// is always routed by exactly one deployment generation.
type Gatekeeper struct {
	reg *Registry

	mu    sync.Mutex // serializes Apply/Rollback and guards hist
	state atomic.Pointer[gkState]

	// hist is the bounded log of applied deployments (oldest first), the
	// rollback safety net an autonomous controller needs: when an
	// adaptive deployment misbehaves, the operator reverts to a known
	// generation instead of reconstructing it from memory mid-incident.
	hist []SpecHistoryEntry
	seq  int
}

// SpecHistoryEntry is one applied deployment generation.
type SpecHistoryEntry struct {
	// Seq increases monotonically across applies (including ones rotated
	// out of the bounded log).
	Seq int `json:"seq"`

	// AppliedAt is when the generation was installed, on the registry's
	// clock.
	AppliedAt time.Time `json:"applied_at"`

	// Spec is the deployment document as applied. Treat it as read-only.
	Spec *DeploymentSpec `json:"spec"`
}

// SpecHistoryLimit bounds the retained spec history.
const SpecHistoryLimit = 8

// gkState is one immutable deployment generation.
type gkState struct {
	spec      *DeploymentSpec
	pipelines map[string]*Pipeline
	tenants   map[string]*Pipeline
	prefixes  []prefixRoute // sorted longest-prefix-first
	fallback  *Pipeline     // the "/" catch-all target
}

// prefixRoute is one compiled path-prefix route.
type prefixRoute struct {
	prefix string
	p      *Pipeline
}

// NewGatekeeper compiles a deployment spec into a running gatekeeper. A
// single-pipeline spec may omit routes (the pipeline becomes the
// catch-all); otherwise the spec must route "/" somewhere.
func NewGatekeeper(reg *Registry, dep *DeploymentSpec) (*Gatekeeper, error) {
	if reg == nil || dep == nil {
		return nil, fmt.Errorf("control: gatekeeper requires a registry and a deployment spec")
	}
	gk := &Gatekeeper{reg: reg}
	st, err := gk.build(dep, nil)
	if err != nil {
		return nil, err
	}
	gk.state.Store(st)
	gk.record(dep)
	return gk, nil
}

// build compiles dep into a state in two phases: first every pipeline's
// components are resolved (carried-over pipelines with unchanged specs
// are reused untouched; changed-but-swappable specs get their components
// precompiled; the rest are built fresh), and only when the whole
// deployment resolved cleanly are the hot-swaps installed. An error
// therefore leaves every live pipeline — and the route table — exactly
// as it was: no half-applied deployments.
func (gk *Gatekeeper) build(dep *DeploymentSpec, prev *gkState) (*gkState, error) {
	if err := dep.Validate(); err != nil {
		return nil, err
	}
	st := &gkState{
		spec:      dep,
		pipelines: make(map[string]*Pipeline, len(dep.Pipelines)),
		tenants:   make(map[string]*Pipeline),
	}
	type pendingSwap struct {
		p      *Pipeline
		ps     PipelineSpec
		scorer core.Scorer
		pol    policy.Policy
		source features.Source
		ctrl   *feedback.Controller
	}
	var pending []pendingSwap
	for _, ps := range dep.Pipelines {
		resolved := ps.withDefaults()
		var built *Pipeline
		if prev != nil {
			if old, ok := prev.pipelines[ps.Name]; ok {
				if old.Spec().swappableEqual(resolved) == nil {
					if old.upToDate(resolved) {
						built = old // unchanged: keep running state intact
					} else {
						scorer, pol, source, ctrl, err := gk.reg.components(resolved, old.load, old.tracker, old.adaptEvents(resolved.Name))
						if err != nil {
							return nil, err
						}
						pending = append(pending, pendingSwap{old, resolved, scorer, pol, source, ctrl})
						built = old
					}
				}
			}
		}
		if built == nil {
			// Building a fresh pipeline has no effect on live traffic
			// until it is routed, so it is safe in the resolve phase.
			p, err := gk.reg.Build(ps)
			if err != nil {
				return nil, err
			}
			built = p
		}
		st.pipelines[ps.Name] = built
	}
	for _, sw := range pending {
		if err := sw.p.applyResolved(sw.ps, sw.scorer, sw.pol, sw.source, sw.ctrl); err != nil {
			return nil, err
		}
	}

	routes := dep.Routes
	if len(routes) == 0 { // single pipeline, implicit catch-all
		routes = []RouteSpec{{PathPrefix: "/", Pipeline: dep.Pipelines[0].Name}}
	}
	for _, r := range routes {
		target := st.pipelines[r.Pipeline] // Validate guaranteed existence
		if r.Tenant != "" {
			st.tenants[r.Tenant] = target
			continue
		}
		st.prefixes = append(st.prefixes, prefixRoute{prefix: r.PathPrefix, p: target})
		if r.PathPrefix == "/" {
			st.fallback = target
		}
	}
	sort.SliceStable(st.prefixes, func(i, j int) bool {
		return len(st.prefixes[i].prefix) > len(st.prefixes[j].prefix)
	})
	return st, nil
}

// Apply reconfigures the whole deployment declaratively: pipelines whose
// specs are unchanged keep running untouched; changed pipelines with
// unchanged limits are hot-swapped in place (zero traffic interruption,
// replay cache preserved); pipelines with changed limits, and new
// pipelines, are rebuilt fresh (their replay windows reset — in-flight
// challenges still verify, because a pipeline's signing key is derived
// from its name and the registry's root key); pipelines absent from the
// new spec are dropped from routing. The route table switches atomically
// to the new generation. On error — reported before anything is
// installed — every live pipeline and the routing state stay exactly as
// they were.
func (gk *Gatekeeper) Apply(dep *DeploymentSpec) error {
	gk.mu.Lock()
	defer gk.mu.Unlock()
	prev := gk.state.Load()
	st, err := gk.build(dep, prev)
	if err != nil {
		return err
	}
	gk.state.Store(st)
	gk.record(dep)
	gk.closeReplaced(prev, st)
	return nil
}

// closeReplaced closes the frameworks of pipelines that did not carry
// from prev into next — rebuilt under the same name, or dropped from the
// deployment — stopping their evidence flush loops so repeated applies
// (powserver's SIGHUP reload) never accumulate goroutines. Closing is
// safe against stragglers: a request still routed by the old generation
// degrades to synchronous evidence writes, it does not fail.
func (gk *Gatekeeper) closeReplaced(prev, next *gkState) {
	for name, old := range prev.pipelines {
		if next.pipelines[name] != old {
			old.Close()
		}
	}
}

// Close stops the background state (evidence flush loops) of every
// pipeline in the current generation. The pipelines keep serving
// correctly — buffered evidence write-back degrades to synchronous — so
// hosts call this on shutdown, after which no framework goroutines
// remain. Idempotent.
func (gk *Gatekeeper) Close() error {
	gk.mu.Lock()
	defer gk.mu.Unlock()
	for _, p := range gk.state.Load().pipelines {
		p.Close()
	}
	return nil
}

// record appends dep to the bounded spec history unless it is
// semantically identical to the latest entry (a no-op re-apply — e.g. a
// SIGHUP against an unchanged file — must not flood the rollback log).
// Callers hold gk.mu.
func (gk *Gatekeeper) record(dep *DeploymentSpec) {
	if n := len(gk.hist); n > 0 && depEqual(gk.hist[n-1].Spec, dep) {
		return
	}
	from := gk.seq
	gk.seq++
	now := gk.reg.now()
	gk.hist = append(gk.hist, SpecHistoryEntry{Seq: gk.seq, AppliedAt: now, Spec: dep})
	if len(gk.hist) > SpecHistoryLimit {
		copy(gk.hist, gk.hist[1:])
		gk.hist = gk.hist[:SpecHistoryLimit]
	}
	if gk.reg.events != nil {
		gk.reg.events(obs.Event{
			At:     now,
			Kind:   obs.EventSpecApply,
			From:   from,
			To:     gk.seq,
			Detail: fmt.Sprintf("%d pipelines, %d routes", len(dep.Pipelines), len(dep.Routes)),
		})
	}
}

// depEqual reports semantic equality of two deployment documents.
func depEqual(a, b *DeploymentSpec) bool {
	if len(a.Pipelines) != len(b.Pipelines) || len(a.Routes) != len(b.Routes) {
		return false
	}
	for i := range a.Pipelines {
		if !specEqual(a.Pipelines[i], b.Pipelines[i]) {
			return false
		}
	}
	for i := range a.Routes {
		if a.Routes[i] != b.Routes[i] {
			return false
		}
	}
	return true
}

// History returns a copy of the retained applied-spec log, oldest first.
// The entries' Spec documents are shared — treat them as read-only.
func (gk *Gatekeeper) History() []SpecHistoryEntry {
	gk.mu.Lock()
	defer gk.mu.Unlock()
	return append([]SpecHistoryEntry(nil), gk.hist...)
}

// Rollback re-applies the previous deployment generation and pops the
// current one off the history, so consecutive rollbacks keep unwinding
// toward the oldest retained spec. It fails — changing nothing — when no
// previous generation is retained or the previous spec no longer
// compiles (e.g. a component was unregistered).
func (gk *Gatekeeper) Rollback() (*DeploymentSpec, error) {
	gk.mu.Lock()
	defer gk.mu.Unlock()
	if len(gk.hist) < 2 {
		return nil, fmt.Errorf("control: no previous deployment to roll back to")
	}
	prev := gk.hist[len(gk.hist)-2]
	cur := gk.state.Load()
	st, err := gk.build(prev.Spec, cur)
	if err != nil {
		return nil, fmt.Errorf("control: rollback to spec #%d: %w", prev.Seq, err)
	}
	gk.state.Store(st)
	dropped := gk.hist[len(gk.hist)-1]
	gk.hist = gk.hist[:len(gk.hist)-1]
	gk.closeReplaced(cur, st)
	if gk.reg.events != nil {
		gk.reg.events(obs.Event{
			At:   gk.reg.now(),
			Kind: obs.EventSpecRollback,
			From: dropped.Seq,
			To:   prev.Seq,
		})
	}
	return prev.Spec, nil
}

// StepControllers advances every pipeline's feedback controller that is
// due at now, in stable name order. The host calls this from one coarse
// ticker goroutine (powserver's adapt loop); pipelines without adapt
// sections are untouched. All pipelines are stepped even when one
// errors; the first error is returned.
func (gk *Gatekeeper) StepControllers(now time.Time) error {
	st := gk.state.Load()
	var firstErr error
	for _, name := range sortedKeys(st.pipelines) {
		if err := st.pipelines[name].StepController(now); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Route reports the framework serving a request class: the tenant route
// if the tenant key matches one, else the longest matching path prefix,
// else the catch-all. It never returns nil and never allocates.
func (gk *Gatekeeper) Route(path, tenant string) *core.Framework {
	return gk.RoutePipeline(path, tenant).Framework()
}

// RoutePipeline is Route returning the pipeline (for stats and specs).
func (gk *Gatekeeper) RoutePipeline(path, tenant string) *Pipeline {
	st := gk.state.Load()
	if tenant != "" {
		if p, ok := st.tenants[tenant]; ok {
			return p
		}
	}
	for _, r := range st.prefixes {
		if strings.HasPrefix(path, r.prefix) {
			return r.p
		}
	}
	return st.fallback
}

// Pipeline reports the named pipeline of the current generation.
func (gk *Gatekeeper) Pipeline(name string) (*Pipeline, bool) {
	p, ok := gk.state.Load().pipelines[name]
	return p, ok
}

// Names reports the current generation's pipeline names, sorted.
func (gk *Gatekeeper) Names() []string {
	return sortedKeys(gk.state.Load().pipelines)
}

// Spec reports the current deployment, reconstructed from each live
// pipeline's applied spec (not the document last passed to Apply), so a
// per-pipeline Pipeline.Apply done directly on a gatekeeper-owned
// pipeline is reflected — an operator can always save GET /spec and
// re-apply it without silently reverting live state.
func (gk *Gatekeeper) Spec() *DeploymentSpec {
	st := gk.state.Load()
	out := &DeploymentSpec{
		Pipelines: make([]PipelineSpec, 0, len(st.spec.Pipelines)),
		Routes:    append([]RouteSpec(nil), st.spec.Routes...),
	}
	for _, ps := range st.spec.Pipelines { // declaration order
		if p, ok := st.pipelines[ps.Name]; ok {
			out.Pipelines = append(out.Pipelines, p.Spec())
		}
	}
	return out
}

// ExpositionInto contributes the whole deployment's metrics to e in
// Prometheus exposition form: every pipeline's serving counters
// (aipow_issued{pipeline="web"} …), its serving-path latency histograms
// (aipow_serving_latency_ms with a stage label), its decision-trace ring
// counters when tracing is on, and — where the spec declares them — the
// adapt controller's level/signal gauges and swap counters, the behavior
// tracker's occupancy gauges (entries, capacity, slab utilization,
// evictions), and the cluster plane's exchange and frame counters. node,
// when non-empty, labels every series with the fleet member's name.
func (gk *Gatekeeper) ExpositionInto(e *metrics.Exposition, node string) {
	st := gk.state.Load()
	for _, name := range sortedKeys(st.pipelines) {
		p := st.pipelines[name]
		labels := make([]metrics.Label, 0, 2)
		labels = append(labels, metrics.Label{Name: "pipeline", Value: name})
		if node != "" {
			labels = append(labels, metrics.Label{Name: "node", Value: node})
		}
		fw := p.Framework()
		fw.StatsExpositionInto(e, "aipow_", labels...)
		fw.LatencyExpositionInto(e, "aipow_serving_latency_ms",
			"serving-path stage latency in milliseconds", labels...)
		if t := fw.TraceRing(); t != nil {
			e.Add(metrics.TypeCounter, "aipow_trace_sampled", "decisions recorded into the trace ring",
				float64(t.Recorded()), labels...)
		}
		if ctrl := p.Controller(); ctrl != nil {
			stats := make(map[string]float64, 16)
			ctrl.StatsPrefixInto("", stats)
			for _, k := range sortedKeys(stats) {
				typ := metrics.TypeGauge // level and the live signal estimates
				if k == "swaps" || k == "escalations" {
					typ = metrics.TypeCounter
				}
				e.Add(typ, "aipow_adapt_"+k, "adapt controller "+k, stats[k], labels...)
			}
		}
		if t := p.tracker; t != nil {
			ts := t.StatsSnapshot()
			e.Add(metrics.TypeGauge, "aipow_tracker_entries", "tracked client IPs", float64(ts.Entries), labels...)
			e.Add(metrics.TypeGauge, "aipow_tracker_capacity", "tracked-IP eviction capacity", float64(ts.Capacity), labels...)
			e.Add(metrics.TypeGauge, "aipow_tracker_slab_slots", "slab slots allocated across shards", float64(ts.Slots), labels...)
			e.Add(metrics.TypeGauge, "aipow_tracker_slab_utilization", "live entries per allocated slab slot", ts.Utilization(), labels...)
			e.Add(metrics.TypeCounter, "aipow_tracker_evictions", "LRU evictions of tracked IPs", float64(ts.Evictions), labels...)
		}
		if n := p.ClusterNode(); n != nil {
			cs := n.Stats()
			e.Add(metrics.TypeGauge, "aipow_cluster_peers", "known fleet peers", float64(cs.Peers), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_filter_hits", "serving-path rejections from the fleet filter", float64(cs.FilterHits), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_exchanges", "completed exchange pulls", float64(cs.Exchanges), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_absorbs", "frames folded in", float64(cs.Absorbs), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_absorb_errors", "failed exchange pulls", float64(cs.AbsorbErrs), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_frames_full", "full anti-entropy evidence frames served", float64(cs.FullFrames), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_frames_delta", "delta evidence frames served", float64(cs.DeltaFrames), labels...)
			e.Add(metrics.TypeCounter, "aipow_cluster_frame_rows", "evidence rows exported across served frames", float64(cs.FrameRows), labels...)
		}
	}
}

// TraceSnapshots exports every pipeline's retained decision traces,
// keyed by pipeline name; pipelines without an observe section are
// omitted. This is the GET /trace read path.
func (gk *Gatekeeper) TraceSnapshots() map[string][]obs.TraceSample {
	st := gk.state.Load()
	out := make(map[string][]obs.TraceSample, len(st.pipelines))
	for name, p := range st.pipelines {
		if t := p.Framework().TraceRing(); t != nil {
			out[name] = t.Snapshot()
		}
	}
	return out
}

// StatsInto adds every pipeline's counters — and, for pipelines with an
// adapt section, the controller's level, swap counts, and live signal
// estimates under "<pipeline>.adapt.*", plus tracker occupancy under
// "<pipeline>.tracker.*" and cluster counters under
// "<pipeline>.cluster.*" — into dst under namespaced keys.
// Reusing dst across polls means no maps are allocated per scrape; the
// namespaced key strings still allocate (this is the admin scrape path,
// not the serving hot path).
func (gk *Gatekeeper) StatsInto(dst map[string]float64) {
	st := gk.state.Load()
	for name, p := range st.pipelines {
		p.Framework().StatsPrefixInto(name+".", dst)
		if ctrl := p.Controller(); ctrl != nil {
			ctrl.StatsPrefixInto(name+".adapt.", dst)
		}
		if t := p.tracker; t != nil {
			ts := t.StatsSnapshot()
			dst[name+".tracker.entries"] = float64(ts.Entries)
			dst[name+".tracker.capacity"] = float64(ts.Capacity)
			dst[name+".tracker.slab_slots"] = float64(ts.Slots)
			dst[name+".tracker.slab_utilization"] = ts.Utilization()
			dst[name+".tracker.evictions"] = float64(ts.Evictions)
		}
		if node := p.ClusterNode(); node != nil {
			cs := node.Stats()
			dst[name+".cluster.peers"] += float64(cs.Peers)
			dst[name+".cluster.filter_hits"] += float64(cs.FilterHits)
			dst[name+".cluster.exchanges"] += float64(cs.Exchanges)
			dst[name+".cluster.absorbs"] += float64(cs.Absorbs)
			dst[name+".cluster.absorb_errors"] += float64(cs.AbsorbErrs)
			dst[name+".cluster.frames_full"] += float64(cs.FullFrames)
			dst[name+".cluster.frames_delta"] += float64(cs.DeltaFrames)
			dst[name+".cluster.frame_rows"] += float64(cs.FrameRows)
		}
	}
}
