package control

import (
	"fmt"
	"sync"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
)

// Pipeline is one runnable, hot-reconfigurable serving pipeline: a
// core.Framework plus the spec it was compiled from and the registry that
// resolves revisions of it. The serving methods (Framework().Decide /
// Verify / Observe) stay allocation-free; Apply installs a revised spec
// atomically against them.
type Pipeline struct {
	reg *Registry
	fw  *core.Framework

	mu   sync.Mutex // guards spec/swapsAt against concurrent Apply
	spec PipelineSpec

	// swapsAt is the framework's swap-generation counter as of the last
	// spec install. A mismatch means someone called Framework.Swap
	// directly (e.g. an emergency override); re-applying the spec then
	// restores the declared configuration instead of no-opping.
	swapsAt uint64
}

// Name reports the pipeline's spec name.
func (p *Pipeline) Name() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec.Name
}

// Spec reports the currently applied spec (defaults resolved).
func (p *Pipeline) Spec() PipelineSpec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec
}

// Framework exposes the underlying serving pipeline. The pointer is
// stable across Apply calls — hold it for the process lifetime.
func (p *Pipeline) Framework() *core.Framework { return p.fw }

// StatsInto adds the pipeline's framework counters into dst without
// allocating a fresh map (see core.Framework.StatsInto).
func (p *Pipeline) StatsInto(dst map[string]float64) { p.fw.StatsInto(dst) }

// Apply hot-swaps the pipeline onto a revised spec: the scorer, policy,
// source, bypass threshold, and fail-closed score are recompiled and
// installed in one atomic snapshot swap, with zero interruption to
// concurrent Decide/Verify traffic. An effectively identical spec is a
// no-op, so re-applying a deployment never resets stateful components —
// unless a direct Framework.Swap diverged the live configuration from
// the spec (detected via the swap-generation counter), in which case
// re-applying restores the declared state.
// The spec's name and its non-hot-swappable fields (ttl, max-difficulty,
// replay-cache, clock-skew — state the issuer/verifier own) must match
// the current spec; changing those needs a rebuilt pipeline
// (Gatekeeper.Apply does this automatically, at the cost of resetting
// the replay cache).
//
// A failed Apply leaves the running configuration untouched.
func (p *Pipeline) Apply(ps PipelineSpec) error {
	if err := ps.validate(); err != nil {
		return err
	}
	ps = ps.withDefaults()
	p.mu.Lock()
	defer p.mu.Unlock()
	if ps.Name != p.spec.Name {
		return fmt.Errorf("control: apply renames pipeline %q to %q; build a new pipeline instead", p.spec.Name, ps.Name)
	}
	if err := p.spec.swappableEqual(ps); err != nil {
		return fmt.Errorf("control: pipeline %q: %v is not hot-swappable; rebuild required", ps.Name, err)
	}
	if specEqual(p.spec, ps) && p.fw.Swaps() == p.swapsAt {
		return nil
	}
	scorer, pol, source, err := p.reg.components(ps)
	if err != nil {
		return err
	}
	return p.installLocked(ps, scorer, pol, source)
}

// installLocked swaps pre-resolved components in under p.mu. Split from
// Apply so Gatekeeper.Apply can resolve every pipeline's components
// before installing any of them (no half-applied deployments).
func (p *Pipeline) installLocked(ps PipelineSpec, scorer core.Scorer, pol policy.Policy, source features.Source) error {
	failClosed := policy.MaxScore
	if ps.FailClosedScore != nil {
		failClosed = *ps.FailClosedScore
	}
	bypass := -1.0
	if ps.BypassBelow != nil {
		bypass = *ps.BypassBelow
	}
	if err := p.fw.Swap(
		core.SetScorer(scorer),
		core.SetPolicy(pol),
		core.SetSource(source),
		core.SetFailClosedScore(failClosed),
		core.SetBypassBelow(bypass),
	); err != nil {
		return err
	}
	p.spec = ps
	p.swapsAt = p.fw.Swaps()
	return nil
}

// upToDate reports whether the pipeline already runs exactly ps: the
// spec matches and no out-of-band Framework.Swap has diverged the live
// configuration since the last install.
func (p *Pipeline) upToDate(ps PipelineSpec) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return specEqual(p.spec, ps) && p.fw.Swaps() == p.swapsAt
}

// applyResolved is installLocked behind the spec mutex.
func (p *Pipeline) applyResolved(ps PipelineSpec, scorer core.Scorer, pol policy.Policy, source features.Source) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.installLocked(ps, scorer, pol, source)
}
