package control

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aipow/internal/cluster"
	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/feedback"
	"aipow/internal/obs"
	"aipow/internal/policy"
)

// Pipeline is one runnable, hot-reconfigurable serving pipeline: a
// core.Framework plus the spec it was compiled from, the registry that
// resolves revisions of it, and — when the spec declares an adapt section
// — the feedback controller closing the defense loop over it. The serving
// methods (Framework().Decide / Verify / Observe) stay allocation-free;
// Apply installs a revised spec atomically against them.
type Pipeline struct {
	reg *Registry
	fw  *core.Framework

	// tracker is the behavior tracker the pipeline was built over (the
	// registry's shared one, or a per-window tracker when the spec
	// declares `window`). Fixed for the pipeline's lifetime — changing
	// the window rebuilds the pipeline — and used by Apply to rebuild
	// sources over the same behavioral state.
	tracker *features.Tracker

	// node is the pipeline's cluster-plane member (nil without a cluster
	// section). Like the tracker it is build-time state: the verifier
	// holds it as its fleet tag filter, so changing the cluster section
	// rebuilds the pipeline; its exchange loop stops via a framework
	// closer when the pipeline closes.
	node *cluster.Node

	mu   sync.Mutex // guards spec/swapsAt against concurrent Apply
	spec PipelineSpec

	// swapsAt is the framework's swap-generation counter as of the last
	// spec install. A mismatch means someone called Framework.Swap
	// directly (e.g. an emergency override); re-applying the spec then
	// restores the declared configuration instead of no-opping.
	// Controller-installed escalations go through controllerSwap, which
	// keeps the counter in sync: adaptive repricing is declared behavior,
	// not divergence.
	swapsAt uint64

	// ctrl is the attached feedback controller (nil without an adapt
	// section), behind an atomic pointer so the load indirection on the
	// serving hot path never takes a lock.
	ctrl atomic.Pointer[feedback.Controller]
}

// Name reports the pipeline's spec name.
func (p *Pipeline) Name() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec.Name
}

// Spec reports the currently applied spec (defaults resolved).
func (p *Pipeline) Spec() PipelineSpec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec
}

// Framework exposes the underlying serving pipeline. The pointer is
// stable across Apply calls — hold it for the process lifetime.
func (p *Pipeline) Framework() *core.Framework { return p.fw }

// Close stops the pipeline's background state — the framework's evidence
// flush loop, when the spec declares an evidence-buffer section — and
// drains any buffered evidence into the tracker. The pipeline keeps
// serving correctly afterward (evidence writes degrade to synchronous);
// Gatekeeper.Apply calls this on pipelines it replaces or drops.
// Idempotent.
func (p *Pipeline) Close() error { return p.fw.Close() }

// Controller reports the attached feedback controller, nil when the spec
// declares no adapt section.
func (p *Pipeline) Controller() *feedback.Controller { return p.ctrl.Load() }

// ClusterNode reports the pipeline's distributed-defense-plane member,
// nil when the spec declares no cluster section. Hosts mount its Handler
// on the peer-exchange listener; the simulation engine exchanges nodes
// directly.
func (p *Pipeline) ClusterNode() *cluster.Node { return p.node }

// StatsInto adds the pipeline's framework counters into dst without
// allocating a fresh map (see core.Framework.StatsInto), plus the
// cluster plane's exchange counters when the pipeline has one.
func (p *Pipeline) StatsInto(dst map[string]float64) {
	p.fw.StatsInto(dst)
	if p.node != nil {
		cs := p.node.Stats()
		dst["cluster.peers"] += float64(cs.Peers)
		dst["cluster.filter_hits"] += float64(cs.FilterHits)
		dst["cluster.exchanges"] += float64(cs.Exchanges)
		dst["cluster.absorbs"] += float64(cs.Absorbs)
		dst["cluster.absorb_errors"] += float64(cs.AbsorbErrs)
		dst["cluster.frames_full"] += float64(cs.FullFrames)
		dst["cluster.frames_delta"] += float64(cs.DeltaFrames)
		dst["cluster.frame_rows"] += float64(cs.FrameRows)
	}
}

// load is the pipeline's policy.LoadFunc: the current controller's load
// estimate, 0 without one. It is a stable indirection — load-shifted
// policies capture the method once and keep reading the live signal
// plane across controller rebuilds — and costs two atomic loads on the
// serving path.
func (p *Pipeline) load() float64 {
	if c := p.ctrl.Load(); c != nil {
		return c.Sampler().Load()
	}
	return 0
}

// StepController advances the pipeline's feedback controller if one is
// attached and its interval has elapsed. Hosts drive this from a coarse
// ticker (powserver's adapt loop); the simulation engine steps its
// controller directly.
func (p *Pipeline) StepController(now time.Time) error {
	ctrl := p.ctrl.Load()
	if ctrl == nil {
		return nil
	}
	_, err := ctrl.MaybeStep(now)
	return err
}

// controllerSwap installs a controller-chosen policy, keeping the
// swap-generation bookkeeping consistent so re-applying the (unchanged)
// spec does not read the escalation as operator divergence and reset it.
// A controller detached by a concurrent Apply is ignored: the new
// deployment generation owns the pipeline now.
func (p *Pipeline) controllerSwap(from *feedback.Controller, pol policy.Policy) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ctrl.Load() != from {
		return nil
	}
	if err := p.fw.SwapPolicy(pol); err != nil {
		return err
	}
	p.swapsAt = p.fw.Swaps()
	return nil
}

// pipelineTarget routes a controller's swaps through its pipeline.
type pipelineTarget struct {
	p    *Pipeline
	ctrl *feedback.Controller
}

// SwapPolicy implements feedback.Target.
func (t pipelineTarget) SwapPolicy(pol policy.Policy) error {
	return t.p.controllerSwap(t.ctrl, pol)
}

// adaptEvents is the sink a pipeline's feedback controller emits level
// transitions into: the framework's trace rung follows the level (so
// sampled traces record the rung they were decided under), and the
// registry's event sink — when one is configured — receives the event
// stamped with the pipeline name. Safe to build before p.fw is set: the
// controller only steps once the pipeline is fully assembled.
func (p *Pipeline) adaptEvents(name string) obs.Sink {
	sink := p.reg.events
	return func(e obs.Event) {
		p.fw.SetTraceRung(e.To)
		if sink != nil {
			e.Pipeline = name
			sink(e)
		}
	}
}

// attachControllerLocked installs (or clears) the pipeline's controller
// and binds it to the pipeline's swap path and counter source. A
// clustered pipeline binds the controller to its local counters summed
// with the fleet's peer-reported ones, so the adapt ladder fires on
// cluster-wide rate — per-node signals would divide an attack's strength
// by the fleet size. Callers hold p.mu or own p exclusively (Build).
func (p *Pipeline) attachControllerLocked(ctrl *feedback.Controller) {
	p.ctrl.Store(ctrl)
	if ctrl != nil {
		var src feedback.Source = p.fw
		if p.node != nil {
			src = feedback.NewSumSource(p.fw, p.node.PeerSource())
		}
		ctrl.Bind(pipelineTarget{p: p, ctrl: ctrl}, src)
	}
}

// Apply hot-swaps the pipeline onto a revised spec: the scorer, policy,
// source, bypass threshold, fail-closed score, and adapt section are
// recompiled and installed in one atomic snapshot swap, with zero
// interruption to concurrent Decide/Verify traffic. An effectively
// identical spec is a no-op, so re-applying a deployment never resets
// stateful components — including an escalated feedback controller —
// unless a direct Framework.Swap diverged the live configuration from
// the spec (detected via the swap-generation counter), in which case
// re-applying restores the declared state. An Apply that does change the
// pipeline rebuilds its controller at base level: the declared spec wins
// over accumulated escalation state, and the controller re-escalates if
// the signals still demand it.
// The spec's name and its non-hot-swappable fields (ttl, max-difficulty,
// replay-cache, clock-skew — state the issuer/verifier own) must match
// the current spec; changing those needs a rebuilt pipeline
// (Gatekeeper.Apply does this automatically, at the cost of resetting
// the replay cache).
//
// A failed Apply leaves the running configuration untouched.
func (p *Pipeline) Apply(ps PipelineSpec) error {
	if err := ps.validate(); err != nil {
		return err
	}
	ps = ps.withDefaults()
	p.mu.Lock()
	defer p.mu.Unlock()
	if ps.Name != p.spec.Name {
		return fmt.Errorf("control: apply renames pipeline %q to %q; build a new pipeline instead", p.spec.Name, ps.Name)
	}
	if err := p.spec.swappableEqual(ps); err != nil {
		return fmt.Errorf("control: pipeline %q: %v is not hot-swappable; rebuild required", ps.Name, err)
	}
	if specEqual(p.spec, ps) && p.fw.Swaps() == p.swapsAt {
		return nil
	}
	scorer, pol, source, ctrl, err := p.reg.components(ps, p.load, p.tracker, p.adaptEvents(ps.Name))
	if err != nil {
		return err
	}
	return p.installLocked(ps, scorer, pol, source, ctrl)
}

// installLocked swaps pre-resolved components in under p.mu. Split from
// Apply so Gatekeeper.Apply can resolve every pipeline's components
// before installing any of them (no half-applied deployments).
func (p *Pipeline) installLocked(ps PipelineSpec, scorer core.Scorer, pol policy.Policy, source features.Source, ctrl *feedback.Controller) error {
	failClosed := policy.MaxScore
	if ps.FailClosedScore != nil {
		failClosed = *ps.FailClosedScore
	}
	bypass := -1.0
	if ps.BypassBelow != nil {
		bypass = *ps.BypassBelow
	}
	swaps := []core.SwapOption{
		core.SetScorer(scorer),
		core.SetPolicy(pol),
		core.SetSource(source),
		core.SetFailClosedScore(failClosed),
		core.SetBypassBelow(bypass),
	}
	// The trace ring is rebuilt only when the observe section changed: an
	// unrelated apply keeps the running ring (and its retained samples),
	// and a removed section disables tracing with SetTrace(nil).
	if !p.spec.Observe.equal(ps.Observe) {
		swaps = append(swaps, core.SetTrace(newTraceRing(ps.Observe)))
	}
	if err := p.fw.Swap(swaps...); err != nil {
		return err
	}
	p.spec = ps
	p.swapsAt = p.fw.Swaps()
	p.attachControllerLocked(ctrl)
	return nil
}

// upToDate reports whether the pipeline already runs exactly ps: the
// spec matches and no out-of-band Framework.Swap has diverged the live
// configuration since the last install.
func (p *Pipeline) upToDate(ps PipelineSpec) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return specEqual(p.spec, ps) && p.fw.Swaps() == p.swapsAt
}

// applyResolved is installLocked behind the spec mutex.
func (p *Pipeline) applyResolved(ps PipelineSpec, scorer core.Scorer, pol policy.Policy, source features.Source, ctrl *feedback.Controller) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.installLocked(ps, scorer, pol, source, ctrl)
}
