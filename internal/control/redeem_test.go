package control

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
)

// vecScorer is a minimal VectorScorer over the tracker's request rate, so
// redeem sections — which require the vector fast path — can compile.
type vecScorer struct{ schema *features.Schema }

func newVecScorer(t *testing.T) vecScorer {
	t.Helper()
	sch, err := features.NewSchema(features.AttrTotalRequests)
	if err != nil {
		t.Fatal(err)
	}
	return vecScorer{schema: sch}
}

func (s vecScorer) Score(attrs map[string]float64) (float64, error) {
	return min(10, attrs[features.AttrTotalRequests]), nil
}

func (s vecScorer) Schema() *features.Schema { return s.schema }

func (s vecScorer) ScoreVector(v []float64) (float64, error) {
	return min(10, v[0]), nil
}

// redeemRegistry is newTestRegistry plus a vector-capable scorer.
func redeemRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := newTestRegistry(t)
	vs := newVecScorer(t)
	if err := reg.RegisterScorer("vec", func(params map[string]float64) (core.Scorer, error) {
		return vs, nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

const redeemSpecText = `
pipeline p
  scorer vec
  policy policy2
  redeem(max=6, half-credit=26, half-life=2m)
  evidence-buffer 64 5ms
`

// TestRedeemSpecRoundTrip parses the redeem and evidence-buffer grammar
// from text, round-trips it through the canonical JSON, and demands
// semantic equality — the property GET /spec depends on.
func TestRedeemSpecRoundTrip(t *testing.T) {
	d, err := ParseDeployment(redeemSpecText)
	if err != nil {
		t.Fatal(err)
	}
	ps := d.Pipelines[0]
	if ps.Redeem == nil || ps.Redeem.Max != 6 || ps.Redeem.HalfCredit != 26 ||
		time.Duration(ps.Redeem.HalfLife) != 2*time.Minute {
		t.Fatalf("redeem section = %+v", ps.Redeem)
	}
	if ps.EvidenceBuffer == nil || ps.EvidenceBuffer.Size != 64 ||
		time.Duration(ps.EvidenceBuffer.Interval) != 5*time.Millisecond {
		t.Fatalf("evidence-buffer section = %+v", ps.EvidenceBuffer)
	}

	buf, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatalf("reparse canonical JSON: %v", err)
	}
	if !specEqual(d.Pipelines[0], d2.Pipelines[0]) {
		t.Fatalf("round trip changed the spec:\n  text: %+v\n  json: %+v", d.Pipelines[0], d2.Pipelines[0])
	}
}

// TestRedeemSpecDefaults pins the parameterless form: a bare `redeem`
// line enables redemption at the reputation package's defaults.
func TestRedeemSpecDefaults(t *testing.T) {
	d, err := ParseDeployment("pipeline p\n scorer vec\n policy policy2\n redeem\n")
	if err != nil {
		t.Fatal(err)
	}
	ps := d.Pipelines[0]
	if ps.Redeem == nil {
		t.Fatal("bare redeem line did not enable redemption")
	}
	if ps.Redeem.Max != 0 || ps.Redeem.HalfCredit != 0 || ps.Redeem.HalfLife != 0 {
		t.Fatalf("bare redeem carries parameters: %+v", ps.Redeem)
	}
}

// TestRedeemSpecErrors exercises the grammar's rejection paths.
func TestRedeemSpecErrors(t *testing.T) {
	pipe := func(line string) string {
		return "pipeline p\n scorer vec\n policy policy2\n " + line + "\n"
	}
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown key", pipe("redeem(frob=3)"), "redeem"},
		{"bad half-life", pipe("redeem(half-life=fast)"), "half-life"},
		{"negative max", pipe("redeem(max=-2)"), "negative max"},
		{"duplicate redeem", pipe("redeem\n redeem"), "duplicate redeem"},
		{"buffer size below minimum", pipe("evidence-buffer 1 5ms"), "below minimum"},
		{"buffer bad interval", pipe("evidence-buffer 64 soon"), "interval"},
		{"buffer arity", pipe("evidence-buffer 64"), "evidence-buffer"},
		{"buffer duplicate", pipe("evidence-buffer 64 5ms\n evidence-buffer 32 1ms"), "duplicate evidence-buffer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDeployment(tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRedeemBuildAndSwap compiles a redeeming, buffered pipeline and pins
// the swap matrix: max/half-credit changes hot-swap, half-life and
// evidence-buffer changes demand a rebuild.
func TestRedeemBuildAndSwap(t *testing.T) {
	reg := redeemRegistry(t)
	d, err := ParseDeployment(redeemSpecText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Build(d.Pipelines[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer p.Close()
	if _, err := p.Framework().Decide(core.RequestContext{IP: "203.0.113.50"}); err != nil {
		t.Fatalf("Decide on redeeming pipeline: %v", err)
	}

	// Redemption magnitude is scorer state: hot-swappable.
	hot := d.Pipelines[0]
	hot.Redeem = &RedeemSpec{Max: 8, HalfCredit: 30, HalfLife: hot.Redeem.HalfLife}
	if err := p.Apply(hot); err != nil {
		t.Fatalf("hot-swap of redeem max/half-credit: %v", err)
	}

	// The half-life lives in the tracker's evidence decay: rebuild.
	cold := d.Pipelines[0]
	cold.Redeem = &RedeemSpec{Max: 6, HalfCredit: 26, HalfLife: Duration(10 * time.Minute)}
	if err := p.Apply(cold); err == nil || !strings.Contains(err.Error(), "rebuild") {
		t.Fatalf("half-life change applied hot: %v", err)
	}

	// So does the write-back buffer geometry.
	rebuf := d.Pipelines[0]
	rebuf.EvidenceBuffer = &BufferSpec{Size: 32, Interval: Duration(time.Millisecond)}
	if err := p.Apply(rebuf); err == nil || !strings.Contains(err.Error(), "rebuild") {
		t.Fatalf("evidence-buffer change applied hot: %v", err)
	}
}

// TestRedeemRequiresVectorScorer pins the compile-time guard: redemption
// wraps the vector fast path, so a map-only scorer is a build error, not
// a silent degradation.
func TestRedeemRequiresVectorScorer(t *testing.T) {
	reg := redeemRegistry(t)
	d, err := ParseDeployment("pipeline p\n scorer threat\n policy policy2\n source store\n redeem\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Build(d.Pipelines[0]); err == nil ||
		!strings.Contains(err.Error(), "vector fast path") {
		t.Fatalf("map-only scorer accepted for redemption: %v", err)
	}
}

// TestBufferSpecBuildsBufferedFramework pins the plumbing: an
// evidence-buffer section routes the built framework's writes through the
// tracker's write-back buffers, and Close drains them.
func TestBufferSpecBuildsBufferedFramework(t *testing.T) {
	reg := redeemRegistry(t)
	d, err := ParseDeployment("pipeline p\n scorer vec\n policy policy2\n evidence-buffer 1024 1h\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Build(d.Pipelines[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := p.Framework().Observe(features.RequestInfo{IP: "203.0.113.51", At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After the drain the observation must be visible in the pipeline's
	// framework state: a second Decide sees nonzero request rate.
	dec, err := p.Framework().Decide(core.RequestContext{IP: "203.0.113.51"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score == 0 {
		t.Error("buffered observation invisible after Close drain")
	}
}

// TestGatekeeperRebuildsDoNotLeakFlushLoops pins the operational property
// behind closeReplaced: every rebuild-forcing Apply (powserver's SIGHUP
// path) replaces a buffered pipeline, and the replaced pipeline's
// evidence flush goroutine must die with it. Ten reloads, then Close,
// must leave no framework goroutines behind.
func TestGatekeeperRebuildsDoNotLeakFlushLoops(t *testing.T) {
	reg := redeemRegistry(t)
	spec := func(ttl string) *DeploymentSpec {
		d, err := ParseDeployment("pipeline p\n scorer vec\n policy policy2\n ttl " + ttl + "\n evidence-buffer 64 1ms\n")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	before := runtime.NumGoroutine()
	gk, err := NewGatekeeper(reg, spec("30s"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ttl := "30s"
		if i%2 == 0 {
			ttl = "60s" // ttl is not hot-swappable: forces a pipeline rebuild
		}
		if err := gk.Apply(spec(ttl)); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	// One live pipeline → at most one flush goroutine above the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines grew from %d to %d across 10 rebuilds; flush loops leak", before, n)
	}
	if err := gk.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gk.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines: %d before, %d after Close", before, n)
	}
}
