package control

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

// threatScorer scores the "threat" attribute, offset by a spec parameter.
type threatScorer struct{ offset float64 }

func (s threatScorer) Score(attrs map[string]float64) (float64, error) {
	v, ok := attrs["threat"]
	if !ok {
		return 0, errors.New("no threat attribute")
	}
	return v + s.offset, nil
}

// newTestRegistry builds a registry with a "threat" scorer and a "store"
// source over a fixed MapStore.
func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterScorer("threat", func(params map[string]float64) (core.Scorer, error) {
		for k := range params {
			if k != "offset" {
				return nil, errors.New("threat takes only offset=<n>")
			}
		}
		return threatScorer{offset: params["offset"]}, nil
	}); err != nil {
		t.Fatal(err)
	}
	store, err := features.NewMapStore(map[string]float64{"threat": 5})
	if err != nil {
		t.Fatal(err)
	}
	store.Put("10.0.0.1", map[string]float64{"threat": 0})
	store.Put("10.0.0.9", map[string]float64{"threat": 10})
	if err := reg.RegisterSource("store", func(params map[string]float64, _ *features.Tracker) (features.Source, error) {
		if len(params) != 0 {
			return nil, errors.New("store takes no parameters")
		}
		return store, nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func decideDifficulty(t *testing.T, fw *core.Framework, ip string) int {
	t.Helper()
	dec, err := fw.Decide(core.RequestContext{IP: ip})
	if err != nil {
		t.Fatal(err)
	}
	if dec.ScoreErr != nil {
		t.Fatalf("decide %s: score error %v", ip, dec.ScoreErr)
	}
	return dec.Difficulty
}

func TestRegistryBuildErrors(t *testing.T) {
	reg := newTestRegistry(t)
	cases := []struct {
		name    string
		spec    PipelineSpec
		wantErr string
	}{
		{"unknown scorer", PipelineSpec{Name: "p", Scorer: "nope", Policy: "policy2"}, "unknown scorer"},
		{"unknown scorer param", PipelineSpec{Name: "p", Scorer: "threat(wat=1)", Policy: "policy2"}, "threat takes only offset"},
		{"bad scorer spec", PipelineSpec{Name: "p", Scorer: "threat(", Policy: "policy2"}, "unbalanced parentheses"},
		{"unknown policy", PipelineSpec{Name: "p", Scorer: "threat", Policy: "nope"}, "unknown policy"},
		{"bad policy param", PipelineSpec{Name: "p", Scorer: "threat", Policy: "policy3(wat=1)"}, "unknown parameter"},
		{"bad inline rules", PipelineSpec{Name: "p", Scorer: "threat", PolicyRules: "when score > 5 use 9"}, "missing required 'default'"},
		{"unknown source", PipelineSpec{Name: "p", Scorer: "threat", Policy: "policy2", Source: "nope"}, "unknown source"},
		{"source param", PipelineSpec{Name: "p", Scorer: "threat", Policy: "policy2", Source: "tracker(x=1)"}, "unknown parameter"},
		{"over-protocol difficulty", PipelineSpec{Name: "p", Scorer: "threat", Policy: "policy2", MaxDifficulty: 500}, "outside protocol range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := reg.Build(tc.spec)
			if err == nil {
				t.Fatalf("built %+v", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := NewRegistry(nil); err == nil {
		t.Error("registry without key accepted")
	}
}

func TestPipelineApplyHotSwap(t *testing.T) {
	reg := newTestRegistry(t)
	spec := PipelineSpec{Name: "p", Scorer: "threat", Policy: "fixed(difficulty=3)", Source: "store"}
	p, err := reg.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	fw := p.Framework()
	if d := decideDifficulty(t, fw, "10.0.0.9"); d != 3 {
		t.Fatalf("initial difficulty = %d, want 3", d)
	}

	next := spec
	next.Policy = "fixed(difficulty=12)"
	next.Scorer = "threat(offset=1)"
	if err := p.Apply(next); err != nil {
		t.Fatal(err)
	}
	if d := decideDifficulty(t, fw, "10.0.0.9"); d != 12 {
		t.Fatalf("post-apply difficulty = %d, want 12 (framework pointer must stay live)", d)
	}
	if p.Spec().Policy != "fixed(difficulty=12)" {
		t.Fatalf("spec not updated: %+v", p.Spec())
	}

	// Non-swappable change rejected, config untouched.
	bad := next
	bad.TTL = Duration(time.Hour)
	if err := p.Apply(bad); err == nil || !strings.Contains(err.Error(), "not hot-swappable") {
		t.Fatalf("ttl change: %v", err)
	}
	rename := next
	rename.Name = "q"
	if err := p.Apply(rename); err == nil || !strings.Contains(err.Error(), "renames") {
		t.Fatalf("rename: %v", err)
	}
	// Broken component spec rejected atomically.
	broken := next
	broken.Scorer = "nope"
	if err := p.Apply(broken); err == nil {
		t.Fatal("broken apply accepted")
	}
	if d := decideDifficulty(t, fw, "10.0.0.9"); d != 12 {
		t.Fatalf("failed applies disturbed the pipeline: d=%d", d)
	}
}

// gkSpec builds the canonical two-pipeline deployment for routing tests.
func gkSpec() *DeploymentSpec {
	return &DeploymentSpec{
		Pipelines: []PipelineSpec{
			{Name: "web", Scorer: "threat", Policy: "fixed(difficulty=2)", Source: "store"},
			{Name: "api", Scorer: "threat", Policy: "fixed(difficulty=7)", Source: "store"},
		},
		Routes: []RouteSpec{
			{PathPrefix: "/", Pipeline: "web"},
			{PathPrefix: "/api/", Pipeline: "api"},
			{Tenant: "gold", Pipeline: "api"},
		},
	}
}

func TestGatekeeperRouting(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	web, _ := gk.Pipeline("web")
	api, _ := gk.Pipeline("api")
	cases := []struct {
		path, tenant string
		want         *Pipeline
	}{
		{"/", "", web},
		{"/index.html", "", web},
		{"/api/v1/thing", "", api}, // longest prefix wins
		{"/apix", "", web},         // "/api/" does not match "/apix"
		{"/", "gold", api},         // tenant beats path
		{"/api/v1", "silver", api}, // unknown tenant falls to path
		{"", "", web},              // degenerate path hits catch-all
	}
	for _, tc := range cases {
		if got := gk.RoutePipeline(tc.path, tc.tenant); got != tc.want {
			t.Errorf("Route(%q, %q) = %s, want %s", tc.path, tc.tenant, got.Name(), tc.want.Name())
		}
	}
	if gk.Route("/api/x", "").PolicyName() == gk.Route("/x", "").PolicyName() {
		t.Error("routes share a policy; expected distinct pipelines")
	}

	// Single-pipeline deployments route everything implicitly.
	solo, err := NewGatekeeper(reg, &DeploymentSpec{Pipelines: []PipelineSpec{
		{Name: "only", Scorer: "threat", Policy: "policy2", Source: "store"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Route("/anything", "t") == nil {
		t.Fatal("implicit catch-all missing")
	}
}

func TestGatekeeperApply(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	webFW := gk.Route("/", "")
	if d := decideDifficulty(t, webFW, "10.0.0.9"); d != 2 {
		t.Fatalf("web difficulty = %d", d)
	}

	// Hot-swap web's policy, drop api, add admin with a changed TTL.
	next := &DeploymentSpec{
		Pipelines: []PipelineSpec{
			{Name: "web", Scorer: "threat", Policy: "fixed(difficulty=9)", Source: "store"},
			{Name: "admin", Scorer: "threat", Policy: "fixed(difficulty=14)", Source: "store", TTL: Duration(time.Minute)},
		},
		Routes: []RouteSpec{
			{PathPrefix: "/", Pipeline: "web"},
			{PathPrefix: "/admin/", Pipeline: "admin"},
		},
	}
	if err := gk.Apply(next); err != nil {
		t.Fatal(err)
	}
	// web was hot-swapped: the framework pointer routed before the apply
	// observes the new policy (requests in flight migrate seamlessly).
	if d := decideDifficulty(t, webFW, "10.0.0.9"); d != 9 {
		t.Fatalf("web difficulty after apply = %d, want 9", d)
	}
	if gk.Route("/", "") != webFW {
		t.Fatal("unchanged-limit pipeline was rebuilt")
	}
	if d := decideDifficulty(t, gk.Route("/admin/x", ""), "10.0.0.9"); d != 14 {
		t.Fatal("admin pipeline not routed")
	}
	if _, ok := gk.Pipeline("api"); ok {
		t.Fatal("dropped pipeline still resolvable")
	}
	if names := gk.Names(); len(names) != 2 || names[0] != "admin" || names[1] != "web" {
		t.Fatalf("Names() = %v", names)
	}

	// A broken apply leaves routing on the previous generation.
	if err := gk.Apply(&DeploymentSpec{Pipelines: []PipelineSpec{
		{Name: "web", Scorer: "nope", Policy: "policy2"},
	}}); err == nil {
		t.Fatal("broken apply accepted")
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.9"); d != 9 {
		t.Fatalf("routing disturbed by failed apply: d=%d", d)
	}

	// Changing a non-swappable limit rebuilds the pipeline under the same
	// name rather than failing the apply.
	rebuilt := &DeploymentSpec{Pipelines: []PipelineSpec{
		{Name: "web", Scorer: "threat", Policy: "fixed(difficulty=4)", Source: "store", TTL: Duration(time.Hour)},
	}}
	if err := gk.Apply(rebuilt); err != nil {
		t.Fatal(err)
	}
	if gk.Route("/", "") == webFW {
		t.Fatal("ttl change did not rebuild the pipeline")
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.9"); d != 4 {
		t.Fatalf("rebuilt pipeline difficulty = %d", d)
	}

	// StatsInto namespaces counters by pipeline.
	stats := make(map[string]float64)
	gk.StatsInto(stats)
	if _, ok := stats["web.issued"]; !ok {
		t.Fatalf("stats missing web.issued: %v", stats)
	}
}

// TestGatekeeperApplyHammer races request routing + decisions against a
// loop of full-deployment applies (alternating specs, including a
// pipeline that comes and goes). Run under -race this is the
// control-plane counterpart of core's swap hammer.
func TestGatekeeperApplyHammer(t *testing.T) {
	reg := newTestRegistry(t)
	specA := gkSpec()
	specB := &DeploymentSpec{
		Pipelines: []PipelineSpec{
			{Name: "web", Scorer: "threat(offset=0.5)", Policy: "fixed(difficulty=5)", Source: "store"},
		},
		Routes: []RouteSpec{{PathPrefix: "/", Pipeline: "web"}},
	}
	gk, err := NewGatekeeper(reg, specA)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			spec := specA
			if i%2 == 1 {
				spec = specB
			}
			if err := gk.Apply(spec); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			paths := []string{"/", "/api/v1", "/static/x"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fw := gk.Route(paths[(w+i)%len(paths)], "")
				if fw == nil {
					t.Error("Route returned nil")
					return
				}
				dec, err := fw.Decide(core.RequestContext{IP: "10.0.0.9"})
				if err != nil {
					t.Errorf("decide: %v", err)
					return
				}
				switch dec.Difficulty {
				case 2, 5, 7: // specA web/api, specB web
				default:
					t.Errorf("difficulty %d from no known config", dec.Difficulty)
					return
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestCrossPipelineRedemptionRejected pins the per-route enforcement
// property: a solution to one pipeline's (cheap) challenge must not
// redeem on another pipeline, even though both derive from one registry
// root key — while a pipeline rebuilt under the same name keeps
// accepting its predecessor's challenges.
func TestCrossPipelineRedemptionRejected(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	web := gk.Route("/", "")
	api := gk.Route("/api/x", "")

	dec, err := web.Decide(core.RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.Verify(sol, "10.0.0.9"); err == nil {
		t.Fatal("cheap web solution redeemed on the api pipeline")
	}

	// Rebuild web under the same name (TTL change forces it) and verify
	// the in-flight challenge still redeems on the successor.
	spec := gkSpec()
	spec.Pipelines[0].TTL = Duration(10 * time.Minute)
	if err := gk.Apply(spec); err != nil {
		t.Fatal(err)
	}
	rebuilt := gk.Route("/", "")
	if rebuilt == web {
		t.Fatal("ttl change did not rebuild web")
	}
	if err := rebuilt.Verify(sol, "10.0.0.9"); err != nil {
		t.Fatalf("rebuilt pipeline rejected its predecessor's challenge: %v", err)
	}
}

// TestGatekeeperApplyAtomicAcrossPipelines pins the no-half-applied
// property: when one pipeline's revision is broken, a valid revision to
// another pipeline in the same apply must NOT take effect.
func TestGatekeeperApplyAtomicAcrossPipelines(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	bad := gkSpec()
	bad.Pipelines[0].Policy = "fixed(difficulty=11)" // valid change to web
	bad.Pipelines[1].Scorer = "nope"                 // broken change to api
	if err := gk.Apply(bad); err == nil {
		t.Fatal("broken deployment accepted")
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.9"); d != 2 {
		t.Fatalf("web difficulty = %d after rejected apply, want untouched 2", d)
	}
}

// TestGatekeeperApplySkipsUnchanged pins the no-op property: re-applying
// a deployment must not churn unchanged pipelines (their swap counters
// stay put, so stateful scorers are never reset by an unrelated reload).
func TestGatekeeperApplySkipsUnchanged(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Apply(gkSpec()); err != nil {
		t.Fatal(err)
	}
	changed := gkSpec()
	changed.Pipelines[0].Policy = "fixed(difficulty=3)"
	if err := gk.Apply(changed); err != nil {
		t.Fatal(err)
	}
	stats := make(map[string]float64)
	gk.StatsInto(stats)
	if stats["api.swaps"] != 0 {
		t.Fatalf("api swapped %v times across no-op applies, want 0", stats["api.swaps"])
	}
	if stats["web.swaps"] != 1 {
		t.Fatalf("web swapped %v times, want exactly 1 (the real change)", stats["web.swaps"])
	}
}

// TestRegistryRejectsWeakRootKey pins the root-key minimum: per-pipeline
// keys are HMAC-derived (always full-length), so the issuer's own length
// check can never catch a weak root — the registry must.
func TestRegistryRejectsWeakRootKey(t *testing.T) {
	if _, err := NewRegistry([]byte("short")); err == nil {
		t.Fatal("15-byte-or-less root key accepted")
	}
	if _, err := NewRegistry([]byte("0123456789abcdef")); err != nil {
		t.Fatalf("16-byte root key rejected: %v", err)
	}
}

// TestApplyRestoresAfterDirectSwap pins declarative-apply semantics: an
// out-of-band Framework.Swap (an emergency override) diverges the live
// config from the spec, and re-applying the *unchanged* spec must
// restore the declared state rather than no-op on spec equality.
func TestApplyRestoresAfterDirectSwap(t *testing.T) {
	reg := newTestRegistry(t)
	spec := PipelineSpec{Name: "p", Scorer: "threat", Policy: "fixed(difficulty=3)", Source: "store"}
	p, err := reg.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Emergency override outside the control plane.
	override, err := policy.NewFixed(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Framework().SwapPolicy(override); err != nil {
		t.Fatal(err)
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.9"); d != 20 {
		t.Fatalf("override not live: d=%d", d)
	}
	// Re-applying the unchanged spec restores the declared config.
	if err := p.Apply(spec); err != nil {
		t.Fatal(err)
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.9"); d != 3 {
		t.Fatalf("re-apply did not restore spec: d=%d, want 3", d)
	}
	// And once in sync, re-apply is a true no-op again.
	before := p.Framework().Swaps()
	if err := p.Apply(spec); err != nil {
		t.Fatal(err)
	}
	if p.Framework().Swaps() != before {
		t.Fatal("in-sync re-apply swapped anyway")
	}

	// The same restore works through a gatekeeper-level apply.
	gk, err := NewGatekeeper(newTestRegistry(t), gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Route("/", "").SwapPolicy(override); err != nil {
		t.Fatal(err)
	}
	if err := gk.Apply(gkSpec()); err != nil {
		t.Fatal(err)
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.9"); d != 2 {
		t.Fatalf("gatekeeper re-apply did not restore spec: d=%d, want 2", d)
	}
}

// TestGatekeeperSpecReflectsPipelineApply pins the /spec consistency
// property: a direct Pipeline.Apply on a gatekeeper-owned pipeline shows
// up in Gatekeeper.Spec, so saving and re-applying the served spec never
// silently reverts live state.
func TestGatekeeperSpecReflectsPipelineApply(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	web, _ := gk.Pipeline("web")
	ps := web.Spec()
	ps.Policy = "fixed(difficulty=13)"
	if err := web.Apply(ps); err != nil {
		t.Fatal(err)
	}
	served, ok := gk.Spec().Pipeline("web")
	if !ok {
		t.Fatal("web missing from served spec")
	}
	if served.Policy != "fixed(difficulty=13)" {
		t.Fatalf("served spec policy = %q, want the live fixed(difficulty=13)", served.Policy)
	}
	// Round trip: re-applying the served spec is a no-op, not a revert.
	if err := gk.Apply(gk.Spec()); err != nil {
		t.Fatal(err)
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.9"); d != 13 {
		t.Fatalf("round-trip reverted live state: d=%d, want 13", d)
	}
}
