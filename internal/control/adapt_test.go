package control

import (
	"strings"
	"sync"
	"testing"
	"time"

	"aipow/internal/core"
)

// manualClock is a test clock for controller stepping.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

const adaptSpecText = `
pipeline web
  scorer threat
  source store
  policy policy1
  adapt capacity 100
  adapt window 3
  adapt interval 1s
  adapt escalate(when=rate>50, policy=policy2, hold=5s)
`

func TestParseDeploymentAdaptText(t *testing.T) {
	dep, err := ParseDeployment(adaptSpecText)
	if err != nil {
		t.Fatal(err)
	}
	a := dep.Pipelines[0].Adapt
	if a == nil {
		t.Fatal("adapt section not parsed")
	}
	if a.Capacity != 100 || a.Window != 3 || a.Interval != Duration(time.Second) || len(a.Rules) != 1 {
		t.Fatalf("unexpected adapt spec: %+v", a)
	}
	if a.Rules[0] != "escalate(when=rate>50, policy=policy2, hold=5s)" {
		t.Fatalf("rule not preserved verbatim: %q", a.Rules[0])
	}

	// The canonical JSON form round-trips through ParseDeployment.
	buf, err := dep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatalf("re-parse canonical JSON: %v", err)
	}
	if !dep2.Pipelines[0].Adapt.equal(a) {
		t.Fatalf("adapt section changed across the JSON round trip: %+v vs %+v", dep2.Pipelines[0].Adapt, a)
	}
}

func TestParseDeploymentAdaptErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"bad rule",
			"pipeline web\n scorer threat\n policy policy1\n adapt escalate(policy=policy2)",
			"missing when",
		},
		{
			"unknown setting",
			"pipeline web\n scorer threat\n policy policy1\n adapt bogus 3",
			"unknown adapt setting",
		},
		{
			"duplicate scalar",
			"pipeline web\n scorer threat\n policy policy1\n adapt capacity 10\n adapt capacity 20\n adapt load-shift 1",
			"duplicate adapt capacity",
		},
		{
			"empty section",
			"pipeline web\n scorer threat\n policy policy1\n adapt capacity 10",
			"neither escalate rules nor load-shift",
		},
		{
			"bad interval",
			"pipeline web\n scorer threat\n policy policy1\n adapt interval soon",
			"adapt interval",
		},
		{
			"load-shift without capacity",
			"pipeline web\n scorer threat\n policy policy1\n adapt load-shift 4",
			"require `adapt capacity",
		},
		{
			"load rule without capacity",
			"pipeline web\n scorer threat\n policy policy1\n adapt escalate(when=load>0.8, policy=policy2)",
			"require `adapt capacity",
		},
		{
			"negative load-shift",
			"pipeline web\n scorer threat\n policy policy1\n adapt load-shift -2",
			"negative load-shift",
		},
	}
	for _, tc := range cases {
		_, err := ParseDeployment(tc.src)
		if err == nil {
			t.Fatalf("%s: parse unexpectedly succeeded", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSpecEqualAdapt(t *testing.T) {
	base := PipelineSpec{Name: "w", Scorer: "threat", Policy: "policy1"}
	withAdapt := base
	withAdapt.Adapt = &AdaptSpec{Rules: []string{"escalate(when=rate>1, policy=policy2)"}}
	if specEqual(base, withAdapt) {
		t.Fatal("adapt section ignored by specEqual")
	}
	other := base
	other.Adapt = &AdaptSpec{Rules: []string{"escalate(when=rate>1, policy=policy2)"}}
	if !specEqual(withAdapt, other) {
		t.Fatal("identical adapt sections compare unequal")
	}
	other.Adapt.Rules = append(other.Adapt.Rules, "escalate(when=load>0.5, policy=policy2)")
	if specEqual(withAdapt, other) {
		t.Fatal("differing rule ladders compare equal")
	}
}

// buildAdaptivePipeline compiles the adaptive test deployment on a manual
// clock.
func buildAdaptivePipeline(t *testing.T) (*Pipeline, *manualClock) {
	t.Helper()
	clock := newManualClock()
	reg := newTestRegistry(t)
	reg.now = clock.now
	dep, err := ParseDeployment(adaptSpecText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Build(dep.Pipelines[0])
	if err != nil {
		t.Fatal(err)
	}
	return p, clock
}

// drive runs n decisions against the pipeline.
func drive(t *testing.T, p *Pipeline, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.Framework().Decide(core.RequestContext{IP: "10.0.0.1"}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineControllerClosedLoop(t *testing.T) {
	p, clock := buildAdaptivePipeline(t)
	ctrl := p.Controller()
	if ctrl == nil {
		t.Fatal("adapt section produced no controller")
	}

	// 10.0.0.1 scores 0: policy1 issues difficulty 1, policy2 issues 5.
	if d := decideDifficulty(t, p.Framework(), "10.0.0.1"); d != 1 {
		t.Fatalf("base difficulty = %d, want 1 (policy1)", d)
	}

	// Quiet step seeds the sampler; then a 100/s burst escalates.
	if err := p.StepController(clock.now()); err != nil {
		t.Fatal(err)
	}
	drive(t, p, 100)
	clock.advance(time.Second)
	if err := p.StepController(clock.now()); err != nil {
		t.Fatal(err)
	}
	if ctrl.Level() != 1 {
		t.Fatalf("level = %d after burst, want 1", ctrl.Level())
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.1"); d != 5 {
		t.Fatalf("escalated difficulty = %d, want 5 (policy2)", d)
	}

	// A controller swap is declared behavior: re-applying the unchanged
	// spec must be a no-op that keeps the escalation (and the controller
	// instance) intact.
	spec := p.Spec()
	if err := p.Apply(spec); err != nil {
		t.Fatal(err)
	}
	if p.Controller() != ctrl {
		t.Fatal("no-op apply replaced the controller")
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.1"); d != 5 {
		t.Fatal("no-op apply reset the escalated policy")
	}

	// Idle time decays the rate; after the 5 s hold the controller steps
	// back down to the declared policy.
	for i := 0; i < 10; i++ {
		clock.advance(time.Second)
		if err := p.StepController(clock.now()); err != nil {
			t.Fatal(err)
		}
	}
	if ctrl.Level() != 0 {
		t.Fatalf("level = %d after idle + hold, want 0", ctrl.Level())
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.1"); d != 1 {
		t.Fatalf("de-escalated difficulty = %d, want 1 (policy1)", d)
	}
	if got := ctrl.Swaps(); got != 2 {
		t.Fatalf("controller swaps = %d, want 2", got)
	}
}

func TestApplyChangeResetsController(t *testing.T) {
	p, clock := buildAdaptivePipeline(t)
	old := p.Controller()

	// Escalate first.
	if err := p.StepController(clock.now()); err != nil {
		t.Fatal(err)
	}
	drive(t, p, 100)
	clock.advance(time.Second)
	if err := p.StepController(clock.now()); err != nil {
		t.Fatal(err)
	}
	if old.Level() != 1 {
		t.Fatalf("setup: not escalated")
	}

	// A real change rebuilds the controller at base level: the declared
	// spec wins over accumulated escalation state.
	spec := p.Spec()
	bypass := 0.5
	spec.BypassBelow = &bypass
	if err := p.Apply(spec); err != nil {
		t.Fatal(err)
	}
	fresh := p.Controller()
	if fresh == old {
		t.Fatal("apply with changes kept the old controller")
	}
	if fresh.Level() != 0 {
		t.Fatalf("fresh controller level = %d, want 0", fresh.Level())
	}
	// The detached controller can no longer steer the pipeline.
	if d := decideDifficulty(t, p.Framework(), "10.0.0.9"); d != 11 {
		t.Fatalf("post-apply difficulty = %d, want 11 (policy1 base)", d)
	}
}

func TestAdaptLoadShift(t *testing.T) {
	clock := newManualClock()
	reg := newTestRegistry(t)
	reg.now = clock.now
	dep, err := ParseDeployment(`
pipeline web
  scorer threat
  source store
  policy policy1
  adapt capacity 100
  adapt load-shift 4
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Build(dep.Pipelines[0])
	if err != nil {
		t.Fatal(err)
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.1"); d != 1 {
		t.Fatalf("unloaded difficulty = %d, want 1", d)
	}
	if err := p.StepController(clock.now()); err != nil {
		t.Fatal(err)
	}
	drive(t, p, 400) // 400/s ≫ capacity 100: load saturates at 1
	clock.advance(time.Second)
	for i := 0; i < 8; i++ { // EWMA warms past capacity over a few steps
		if err := p.StepController(clock.now()); err != nil {
			t.Fatal(err)
		}
		drive(t, p, 400)
		clock.advance(time.Second)
	}
	if load := p.Controller().Sampler().Load(); load != 1 {
		t.Fatalf("load = %v, want saturated 1", load)
	}
	if d := decideDifficulty(t, p.Framework(), "10.0.0.1"); d != 5 {
		t.Fatalf("loaded difficulty = %d, want 1+4 shift", d)
	}
}

func TestGatekeeperHistoryAndRollback(t *testing.T) {
	reg := newTestRegistry(t)
	depA, err := ParseDeployment("pipeline web\n scorer threat\n source store\n policy fixed(difficulty=3)")
	if err != nil {
		t.Fatal(err)
	}
	gk, err := NewGatekeeper(reg, depA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gk.Rollback(); err == nil {
		t.Fatal("rollback with a single generation unexpectedly succeeded")
	}

	depB, err := ParseDeployment("pipeline web\n scorer threat\n source store\n policy fixed(difficulty=7)")
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Apply(depB); err != nil {
		t.Fatal(err)
	}
	// Re-applying the same document must not spam the rollback log.
	if err := gk.Apply(depB); err != nil {
		t.Fatal(err)
	}
	hist := gk.History()
	if len(hist) != 2 || hist[0].Seq != 1 || hist[1].Seq != 2 {
		t.Fatalf("unexpected history: %+v", hist)
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.1"); d != 7 {
		t.Fatalf("difficulty = %d, want 7 before rollback", d)
	}

	prev, err := gk.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if prev.Pipelines[0].Policy != "fixed(difficulty=3)" {
		t.Fatalf("rollback returned wrong spec: %+v", prev.Pipelines[0])
	}
	if d := decideDifficulty(t, gk.Route("/", ""), "10.0.0.1"); d != 3 {
		t.Fatalf("difficulty = %d, want 3 after rollback", d)
	}
	if got := len(gk.History()); got != 1 {
		t.Fatalf("history length = %d after rollback, want 1", got)
	}
	if _, err := gk.Rollback(); err == nil {
		t.Fatal("second rollback unexpectedly succeeded")
	}
}

func TestGatekeeperHistoryBounded(t *testing.T) {
	reg := newTestRegistry(t)
	dep := func(d string) *DeploymentSpec {
		spec, err := ParseDeployment("pipeline web\n scorer threat\n source store\n policy fixed(difficulty=" + d + ")")
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	gk, err := NewGatekeeper(reg, dep("1"))
	if err != nil {
		t.Fatal(err)
	}
	diffs := []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "11"}
	for _, d := range diffs {
		if err := gk.Apply(dep(d)); err != nil {
			t.Fatal(err)
		}
	}
	hist := gk.History()
	if len(hist) != SpecHistoryLimit {
		t.Fatalf("history length = %d, want bounded at %d", len(hist), SpecHistoryLimit)
	}
	if hist[len(hist)-1].Seq != 11 {
		t.Fatalf("latest seq = %d, want 11", hist[len(hist)-1].Seq)
	}
}

func TestGatekeeperStatsIncludeController(t *testing.T) {
	reg := newTestRegistry(t)
	dep, err := ParseDeployment(adaptSpecText)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.StepControllers(time.Now()); err != nil {
		t.Fatal(err)
	}
	stats := make(map[string]float64)
	gk.StatsInto(stats)
	for _, key := range []string{"web.issued", "web.adapt.level", "web.adapt.swaps", "web.adapt.rate"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q (got %v)", key, stats)
		}
	}
}

func TestRegistryBuildRejectsBadAdaptPolicy(t *testing.T) {
	reg := newTestRegistry(t)
	dep, err := ParseDeployment(`
pipeline web
  scorer threat
  policy policy1
  adapt escalate(when=rate>1, policy=nosuchpolicy)
`)
	if err != nil {
		t.Fatal(err) // grammar is fine; resolution must fail at build
	}
	if _, err := reg.Build(dep.Pipelines[0]); err == nil {
		t.Fatal("build with an unresolvable escalation policy unexpectedly succeeded")
	}
}

// TestAdaptRungShapePolicy pins that the shape(...) combinator is a legal
// adapt escalation target: the rung's shaped policy compiles through the
// registry (nested component spec included), parses from the text DSL,
// and a bad shape rung fails at validation time.
func TestAdaptRungShapePolicy(t *testing.T) {
	reg := newTestRegistry(t)
	dep, err := ParseDeployment(`
pipeline web
  scorer threat
  source store
  policy policy1
  adapt escalate(when=rate>10, policy=shape(inner=fixed(difficulty=16), floor=0.25), hold=5s)
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Build(dep.Pipelines[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Controller() == nil {
		t.Fatal("no controller attached")
	}
	rules := p.Controller().Rules()
	if len(rules) != 1 || !strings.Contains(rules[0], "shape(inner=fixed(difficulty=16)") {
		t.Fatalf("rules = %v, want the shape rung", rules)
	}
	// A rung whose shape inner does not resolve fails at Build (the
	// grammar itself is fine, so parsing accepts it).
	bad, err := ParseDeployment(`
pipeline web
  scorer threat
  source store
  policy policy1
  adapt escalate(when=rate>10, policy=shape(inner=nope), hold=5s)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Build(bad.Pipelines[0]); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("Build with unresolvable shape inner: %v", err)
	}
}
