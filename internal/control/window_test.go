package control

import (
	"strings"
	"testing"
	"time"

	"aipow/internal/features"
)

func TestWindowSpecParsing(t *testing.T) {
	dep, err := ParseDeployment(`
pipeline login
  scorer threat
  policy policy2
  window 10s
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(dep.Pipelines[0].TrackerWindow); got != 10*time.Second {
		t.Fatalf("window = %v, want 10s", got)
	}

	// JSON round-trips through the canonical form.
	buf, err := dep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !specEqual(dep.Pipelines[0], back.Pipelines[0]) {
		t.Fatalf("window lost in JSON round-trip: %+v vs %+v", dep.Pipelines[0], back.Pipelines[0])
	}

	for _, bad := range []string{
		"pipeline p\n  scorer s\n  policy policy2\n  window nope\n",
		"pipeline p\n  scorer s\n  policy policy2\n  window 5s\n  window 6s\n", // duplicate
		"pipeline p\n  scorer s\n  policy policy2\n  window -5s\n",
	} {
		if _, err := ParseDeployment(bad); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

func TestWindowIsNotHotSwappable(t *testing.T) {
	a := PipelineSpec{Name: "p", Scorer: "s", Policy: "policy2"}
	b := a
	b.TrackerWindow = Duration(10 * time.Second)
	if err := a.swappableEqual(b); err == nil {
		t.Fatal("window change passed swappableEqual")
	}
	if specEqual(a, b) {
		t.Fatal("specEqual ignores the window")
	}
}

func TestPerWindowTrackersSharedByEqualWindows(t *testing.T) {
	reg := newTestRegistry(t)
	base := PipelineSpec{Scorer: "threat", Policy: "policy2"}
	build := func(name string, window time.Duration) *Pipeline {
		ps := base
		ps.Name = name
		ps.TrackerWindow = Duration(window)
		p, err := reg.Build(ps)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		return p
	}
	def1 := build("default-1", 0)
	def2 := build("default-2", 0)
	short1 := build("short-1", 10*time.Second)
	short2 := build("short-2", 10*time.Second)
	long1 := build("long-1", 5*time.Minute)

	if def1.tracker != reg.Tracker() || def2.tracker != reg.Tracker() {
		t.Error("zero-window pipelines do not share the registry default tracker")
	}
	if short1.tracker == reg.Tracker() {
		t.Error("windowed pipeline got the default tracker")
	}
	if short1.tracker != short2.tracker {
		t.Error("equal windows do not share one tracker")
	}
	if long1.tracker == short1.tracker {
		t.Error("different windows share one tracker")
	}

	// Rebuilding under the same window keeps the same tracker (behavioral
	// history survives reconfiguration).
	short3 := build("short-3", 10*time.Second)
	if short3.tracker != short1.tracker {
		t.Error("same-window rebuild lost the shared tracker")
	}
}

func TestWindowCountBounded(t *testing.T) {
	reg := newTestRegistry(t)
	for i := 0; i < maxTrackerWindows; i++ {
		if _, err := reg.trackerFor(PipelineSpec{TrackerWindow: Duration(time.Duration(i+1) * time.Second)}); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	newest, err := reg.trackerFor(PipelineSpec{TrackerWindow: Duration(time.Duration(maxTrackerWindows) * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	// Window churn past the bound FIFO-evicts the oldest share entry
	// instead of failing the apply…
	over, err := reg.trackerFor(PipelineSpec{TrackerWindow: Duration(time.Hour)})
	if err != nil {
		t.Fatalf("window churn past the bound failed: %v", err)
	}
	if len(reg.windowed) != maxTrackerWindows {
		t.Fatalf("share map holds %d windows, want bound %d", len(reg.windowed), maxTrackerWindows)
	}
	// …so the evicted (oldest) window rebuilds fresh while recent windows
	// keep their shared tracker.
	fresh, err := reg.trackerFor(PipelineSpec{TrackerWindow: Duration(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == over {
		t.Fatal("evicted window handed another window's tracker")
	}
	again, err := reg.trackerFor(PipelineSpec{TrackerWindow: Duration(time.Duration(maxTrackerWindows) * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if again != newest {
		t.Fatal("recent window lost its shared tracker to FIFO churn")
	}
}

// TestWindowedTrackerInheritsSizing pins that a per-window tracker keeps
// the shared tracker's capacity and evidence half-life: `window` changes
// the decay horizon, nothing else.
func TestWindowedTrackerInheritsSizing(t *testing.T) {
	shared, err := features.NewTracker(
		features.WithCapacity(1234),
		features.WithEvidenceHalfLife(7*time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(testKey, WithRegistryTracker(shared))
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := reg.trackerFor(PipelineSpec{TrackerWindow: Duration(10 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Capacity() != shared.Capacity() {
		t.Errorf("capacity %d, want inherited %d", windowed.Capacity(), shared.Capacity())
	}
	if windowed.EvidenceHalfLife() != shared.EvidenceHalfLife() {
		t.Errorf("half-life %v, want inherited %v", windowed.EvidenceHalfLife(), shared.EvidenceHalfLife())
	}
}

func TestGatekeeperWindowedPipelines(t *testing.T) {
	reg := newTestRegistry(t)
	dep, err := ParseDeployment(`
pipeline web
  scorer threat
  policy policy2
  source store
pipeline login
  scorer threat
  policy policy2
  source store
  window 10s
route / web
route /login login
`)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	web, _ := gk.Pipeline("web")
	login, _ := gk.Pipeline("login")
	if web.tracker == login.tracker {
		t.Fatal("windowed pipeline shares the default tracker")
	}

	// A window change is a rebuild, not a hot-swap — but through the
	// gatekeeper it applies cleanly and lands on the right tracker.
	dep2, err := ParseDeployment(`
pipeline web
  scorer threat
  policy policy2
  source store
pipeline login
  scorer threat
  policy policy2
  source store
  window 30s
route / web
route /login login
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Apply(dep2); err != nil {
		t.Fatal(err)
	}
	login2, _ := gk.Pipeline("login")
	if login2 == login {
		t.Fatal("window change did not rebuild the pipeline")
	}
	if login2.tracker == login.tracker {
		t.Fatal("rebuilt pipeline kept the old window's tracker")
	}
	// Direct Pipeline.Apply with a changed window is rejected.
	ps := login2.Spec()
	ps.TrackerWindow = Duration(40 * time.Second)
	if err := login2.Apply(ps); err == nil || !strings.Contains(err.Error(), "not hot-swappable") {
		t.Fatalf("window change hot-swapped: %v", err)
	}
}
