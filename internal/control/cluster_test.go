package control

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/puzzle"
)

func TestClusterGrammar(t *testing.T) {
	dep, err := ParseDeployment(`
pipeline api
  scorer threat
  policy policy2
  cluster peers(http://n1:7000/cluster/api, http://n2:7000/cluster/api) exchange(250ms) filter(bits=16384, hashes=5)
`)
	if err != nil {
		t.Fatal(err)
	}
	cs := dep.Pipelines[0].Cluster
	if cs == nil {
		t.Fatal("cluster statement parsed to nil")
	}
	if len(cs.Peers) != 2 || cs.Peers[0] != "http://n1:7000/cluster/api" || cs.Peers[1] != "http://n2:7000/cluster/api" {
		t.Fatalf("peers = %v", cs.Peers)
	}
	if time.Duration(cs.Exchange) != 250*time.Millisecond || cs.FilterBits != 16384 || cs.FilterHashes != 5 {
		t.Fatalf("cluster = %+v", cs)
	}

	// JSON round-trips through the canonical form.
	buf, err := dep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !specEqual(dep.Pipelines[0], back.Pipelines[0]) {
		t.Fatalf("cluster lost in JSON round-trip: %+v vs %+v", dep.Pipelines[0].Cluster, back.Pipelines[0].Cluster)
	}

	// A bare statement selects all defaults: clustered, no peers yet.
	bare, err := ParseDeployment("pipeline p\n scorer threat\n policy policy2\n cluster\n")
	if err != nil {
		t.Fatal(err)
	}
	if bare.Pipelines[0].Cluster == nil {
		t.Fatal("bare cluster statement parsed to nil")
	}

	for _, bad := range []string{
		"pipeline p\n scorer s\n policy policy2\n cluster exchange(abc)\n",
		"pipeline p\n scorer s\n policy policy2\n cluster filter(bits=1000)\n", // not a power of two
		"pipeline p\n scorer s\n policy policy2\n cluster filter(depth=3)\n",
		"pipeline p\n scorer s\n policy policy2\n cluster bogus(1)\n",
		"pipeline p\n scorer s\n policy policy2\n cluster peers(a) peers(b)\n", // duplicate group
		"pipeline p\n scorer s\n policy policy2\n cluster\n cluster\n",         // duplicate statement
		"pipeline p\n scorer s\n policy policy2\n cluster exchange(-1s)\n",
	} {
		if _, err := ParseDeployment(bad); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

func TestClusterIsNotHotSwappable(t *testing.T) {
	a := PipelineSpec{Name: "p", Scorer: "s", Policy: "policy2"}
	b := a
	b.Cluster = &ClusterSpec{Exchange: Duration(time.Second)}
	if err := a.swappableEqual(b); err == nil {
		t.Fatal("cluster change passed swappableEqual")
	}
	if specEqual(a, b) {
		t.Fatal("specEqual ignores the cluster section")
	}
	c := b
	c.Cluster = &ClusterSpec{Exchange: Duration(time.Second)}
	if err := b.swappableEqual(c); err != nil {
		t.Fatalf("identical cluster sections forced a rebuild: %v", err)
	}
}

// clusterSpec builds a single-pipeline deployment whose cluster section
// lists the given peers.
func clusterSpec(t *testing.T, peers ...string) *DeploymentSpec {
	t.Helper()
	stmt := "cluster exchange(1ms)"
	if len(peers) > 0 {
		stmt += " peers(" + strings.Join(peers, ", ") + ")"
	}
	dep, err := ParseDeployment("pipeline p\n scorer threat\n policy policy2\n source store\n " + stmt + "\n")
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestClusterCrossNodeReplay is the distributed-defense headline at the
// control-plane level: a token genuinely solved and redeemed on fleet
// node A must not redeem on node B once B has absorbed A's filter frame
// — same root key, same pipeline name, two registries.
func TestClusterCrossNodeReplay(t *testing.T) {
	regA := newTestRegistry(t)
	WithRegistryNodeID("node-a")(regA)
	regB := newTestRegistry(t)
	WithRegistryNodeID("node-b")(regB)

	gkA, err := NewGatekeeper(regA, clusterSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer gkA.Close()
	gkB, err := NewGatekeeper(regB, clusterSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer gkB.Close()

	pa, _ := gkA.Pipeline("p")
	pb, _ := gkB.Pipeline("p")
	nodeA, nodeB := pa.ClusterNode(), pb.ClusterNode()
	if nodeA == nil || nodeB == nil {
		t.Fatal("clustered pipelines carry no node")
	}

	dec, err := pa.Framework().Decide(core.RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Bypassed || dec.Difficulty == 0 {
		t.Fatal("10.0.0.9 not challenged")
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Framework().Verify(sol, "10.0.0.9"); err != nil {
		t.Fatalf("honest redemption on the home node failed: %v", err)
	}

	// Before the exchange B would accept the replay (same key, its own
	// replay window never saw the tag); after absorbing A's frame it must
	// fail closed.
	nodeB.ExchangeWith(nodeA)
	if err := pb.Framework().Verify(sol, "10.0.0.9"); !errors.Is(err, puzzle.ErrReplayed) {
		t.Fatalf("cross-node replay verdict = %v, want ErrReplayed", err)
	}
	if nodeB.Stats().FilterHits == 0 {
		t.Fatal("suppressed replay not counted as a filter hit")
	}
}

// TestClusterLifecycle pins the goroutine accounting for the exchange
// loop: peers in the spec start it, rebuild-forcing applies replace it
// without leaking the old one, and Close stops it.
func TestClusterLifecycle(t *testing.T) {
	// A peer that always 500s: the loop must keep running (and counting
	// errors), not exit or wedge.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	before := runtime.NumGoroutine()
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, clusterSpec(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := gk.Pipeline("p")
	node := p.ClusterNode()
	deadline := time.Now().Add(5 * time.Second)
	for node.Stats().AbsorbErrs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("exchange loop never ran")
		}
		time.Sleep(time.Millisecond)
	}

	// A cluster change is applied by rebuild; the replaced pipeline's
	// exchange loop must die with its framework.
	for i := 0; i < 5; i++ {
		dep := clusterSpec(t, srv.URL)
		if i%2 == 0 {
			dep.Pipelines[0].Cluster.FilterBits = 1 << 15
		}
		if err := gk.Apply(dep); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if err := gk.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close — exchange loops leak",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterOffIsInert: without a cluster section there is no node, no
// cluster stats keys, and the serving path is exactly the standalone one.
func TestClusterOffIsInert(t *testing.T) {
	reg := newTestRegistry(t)
	dep, err := ParseDeployment("pipeline p\n scorer threat\n policy policy2\n source store\n")
	if err != nil {
		t.Fatal(err)
	}
	gk, err := NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()
	p, _ := gk.Pipeline("p")
	if p.ClusterNode() != nil {
		t.Fatal("standalone pipeline grew a cluster node")
	}
	stats := map[string]float64{}
	p.StatsInto(stats)
	for k := range stats {
		if strings.HasPrefix(k, "cluster.") {
			t.Fatalf("standalone pipeline exports cluster stat %q", k)
		}
	}
}

// TestClusterStats: a clustered pipeline namespaces its node counters.
func TestClusterStats(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, clusterSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()
	p, _ := gk.Pipeline("p")
	stats := map[string]float64{}
	p.StatsInto(stats)
	for _, k := range []string{"cluster.peers", "cluster.filter_hits", "cluster.exchanges",
		"cluster.frames_full", "cluster.frames_delta", "cluster.frame_rows"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("missing cluster stat %q (have %v)", k, stats)
		}
	}

	// The gatekeeper scrape — what powserver's /stats serves — must carry
	// the same counters under the pipeline's namespace.
	scrape := map[string]float64{}
	gk.StatsInto(scrape)
	for _, k := range []string{"p.cluster.peers", "p.cluster.filter_hits", "p.cluster.exchanges",
		"p.cluster.frames_full", "p.tracker.entries", "p.tracker.slab_utilization"} {
		if _, ok := scrape[k]; !ok {
			t.Errorf("gatekeeper scrape missing %q", k)
		}
	}
}
