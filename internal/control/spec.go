// Package control is the framework's runtime control plane: declarative
// deployment specifications, a component registry that compiles them into
// runnable pipelines, and a gatekeeper that routes request classes onto
// named pipelines — all hot-swappable while the serving path keeps running
// allocation-free.
//
// The paper's framing is that operators tune defense by swapping policies,
// not redeploying code. This package extends that from the policy to the
// whole pipeline: a Spec names the scorer, policy, source, TTL, difficulty
// cap, bypass threshold, and limits in a short text (or JSON) document;
// Registry.Build compiles it into a *Pipeline around a core.Framework; and
// Pipeline.Apply / Gatekeeper.Apply install a revised spec atomically
// against live traffic (RCU snapshot swap in core, immutable route-table
// swap here). Long-lived shared state — the behavior tracker and the HMAC
// key — lives in the Registry and persists across every apply.
package control

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"aipow/internal/feedback"
	"aipow/internal/puzzle"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("30s") in JSON specs and accepts either a string or integer nanoseconds
// when unmarshaling, so text and JSON spec forms stay interconvertible.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("control: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("control: duration must be a string like \"30s\" or integer nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// PipelineSpec declares one runnable pipeline: which components serve a
// request class and under what limits. Scorer, Policy and Source use the
// shared component-spec syntax "name" or "name(k=v,k2=v2)"; names resolve
// against the Registry the spec is built with.
type PipelineSpec struct {
	// Name identifies the pipeline (route targets, logs, stats).
	Name string `json:"name"`

	// Scorer is the AI-model spec, e.g. "dabr" or "hybrid(saturation=4)".
	// Required.
	Scorer string `json:"scorer"`

	// Policy is the score→difficulty policy in registry syntax, e.g.
	// "policy2" or "policy3(epsilon=2.5)". Exactly one of Policy and
	// PolicyRules must be set.
	Policy string `json:"policy,omitempty"`

	// PolicyRules is an inline policy program in the rule DSL ("when score
	// >= 8 use 14 / default 3" lines). In the text spec form, bare when/
	// default lines inside a pipeline block land here.
	PolicyRules string `json:"policy_rules,omitempty"`

	// Source is the attribute-source spec (default "tracker", the live
	// behavior tracker alone). Deployments with a static feed register and
	// name richer sources, e.g. "combined".
	Source string `json:"source,omitempty"`

	// Puzzle selects the pipeline's puzzle backend in the puzzle package's
	// spec syntax: "hashcash(bits=22)" or "balloon(space=256, time=2)"
	// (empty = the default hashcash backend, Version1 wire format). Each
	// pipeline signs with its own derived key, so a solution minted on one
	// route never redeems on another regardless of backend. Not
	// hot-swappable: the backend is pinned into the issuer and verifier at
	// build time, so changing it rebuilds the pipeline (in-flight
	// challenges from the old backend stop verifying — fail-closed, like a
	// key rotation).
	Puzzle string `json:"puzzle,omitempty"`

	// TrackerWindow gives the pipeline its own behavior tracker with this
	// sliding-window span instead of the registry's shared default-window
	// tracker — so one deployment can pair a short-memory window on a
	// login route with a long one on the frontend. Pipelines declaring
	// equal windows share one tracker (behavioral history still follows a
	// client across those routes); the zero value keeps the shared
	// default. Not hot-swappable: the tracker is wired into the framework
	// at build time, so changing it rebuilds the pipeline.
	TrackerWindow Duration `json:"window,omitempty"`

	// TTL is the challenge lifetime (0 = puzzle.DefaultTTL). Not
	// hot-swappable: it lives in the issuer.
	TTL Duration `json:"ttl,omitempty"`

	// MaxDifficulty caps what the issuer signs (0 = 22). The compiled
	// policy is clamped to [1, MaxDifficulty] so a worst-score client
	// still receives a challenge rather than an error. Not hot-swappable.
	MaxDifficulty int `json:"max_difficulty,omitempty"`

	// BypassBelow lets requests scoring strictly under it skip the puzzle;
	// nil or negative disables. Hot-swappable.
	BypassBelow *float64 `json:"bypass_below,omitempty"`

	// FailClosedScore is the score assumed when the scorer errors (nil =
	// 10, maximally suspicious). Hot-swappable.
	FailClosedScore *float64 `json:"fail_closed_score,omitempty"`

	// ReplayCache bounds the single-use seed cache (0 = 1<<16, negative
	// disables replay protection). Not hot-swappable.
	ReplayCache int `json:"replay_cache,omitempty"`

	// AuthCacheSlots sizes the issuer/verifier authenticated-challenge
	// cache (0 = 2048; rounded up to a power of two, clamped to
	// [64, 1<<22]). Size toward ≥ 10× the challenges outstanding at any
	// instant; a miss only costs an HMAC recomputation. Not hot-swappable.
	AuthCacheSlots int `json:"auth_cache,omitempty"`

	// ClockSkew is the verifier's tolerance for clock drift (0 = 2s). Not
	// hot-swappable.
	ClockSkew Duration `json:"clock_skew,omitempty"`

	// Adapt attaches a closed-loop feedback controller to the pipeline:
	// live signal estimation driving automatic policy escalation. Nil
	// leaves the pipeline purely operator-driven. Hot-swappable — but an
	// Apply that changes the pipeline also resets the controller to its
	// base level (the declared spec always wins over accumulated
	// escalation state).
	Adapt *AdaptSpec `json:"adapt,omitempty"`

	// Redeem wraps the pipeline's scorer with behavioral redemption
	// (reputation.Decay): sustained verified-solve evidence earns a
	// bounded, decaying score attenuation, closing the false-positive
	// tail. The scorer spec must resolve to a vector-capable scorer. Max
	// and half-credit are hot-swappable; half-life is the evidence decay
	// horizon of the pipeline's behavior tracker and therefore rebuilds
	// the pipeline when changed (pipelines declaring the same window and
	// half-life share a tracker).
	Redeem *RedeemSpec `json:"redeem,omitempty"`

	// EvidenceBuffer enables buffered evidence write-back on the
	// pipeline's framework (core.WithEvidenceBuffer): Observe and the
	// verification evidence append to per-shard buffers flushed in the
	// background, taking tracker shard locks off the serving path. Not
	// hot-swappable: the flush loop is wired at build time.
	EvidenceBuffer *BufferSpec `json:"evidence_buffer,omitempty"`

	// Observe configures the pipeline's sampled decision tracing. Nil
	// disables tracing (the serving path then pays one nil-check per
	// decision). Hot-swappable: the trace ring lives in the framework's
	// RCU snapshot, so an Apply that only changes this section is a plain
	// snapshot swap.
	Observe *ObserveSpec `json:"observe,omitempty"`

	// Cluster joins the pipeline to the distributed defense plane: a
	// cluster.Node is built alongside the framework, wired as the
	// verifier's fleet tag filter, bound to the pipeline's tracker for
	// evidence gossip, and summed into the adapt controller's sampler so
	// escalation fires on cluster-wide rates. Nil keeps the pipeline
	// standalone with zero behavior change. Not hot-swappable: the node
	// is pinned into the verifier at build time, like ttl — changing it
	// rebuilds the pipeline.
	Cluster *ClusterSpec `json:"cluster,omitempty"`
}

// RedeemSpec is a pipeline's behavioral-redemption section. In the text
// DSL it is a single `redeem(max=6, half-credit=26, half-life=5m)` line;
// every parameter is optional (zero keeps the reputation package's or the
// tracker's default).
type RedeemSpec struct {
	// Max caps the score attenuation evidence can earn
	// (0 = reputation.DefaultMaxRedemption). Hot-swappable.
	Max float64 `json:"max,omitempty"`

	// HalfCredit is the solve credit at which half the maximum redemption
	// applies (0 = reputation.DefaultHalfCredit). Hot-swappable.
	HalfCredit float64 `json:"half_credit,omitempty"`

	// HalfLife is the solve-credit decay half-life, state owned by the
	// pipeline's behavior tracker (0 = the registry tracker's half-life).
	// Not hot-swappable: changing it keys the pipeline onto a different
	// tracker.
	HalfLife Duration `json:"half_life,omitempty"`
}

// validate rejects malformed redeem sections.
func (r *RedeemSpec) validate(pipeline string) error {
	switch {
	case r.Max < 0:
		return fmt.Errorf("control: pipeline %q redeem: negative max", pipeline)
	case r.HalfCredit < 0:
		return fmt.Errorf("control: pipeline %q redeem: negative half-credit", pipeline)
	case r.HalfLife < 0:
		return fmt.Errorf("control: pipeline %q redeem: negative half-life", pipeline)
	}
	return nil
}

// equal reports semantic equality of two redeem sections.
func (r *RedeemSpec) equal(b *RedeemSpec) bool {
	if (r == nil) != (b == nil) {
		return false
	}
	return r == nil || *r == *b
}

// halfLife reports the section's half-life, tolerating a nil receiver.
func (r *RedeemSpec) halfLife() Duration {
	if r == nil {
		return 0
	}
	return r.HalfLife
}

// BufferSpec is a pipeline's evidence write-back section: the per-shard
// buffer size bound and the background flush interval. In the text DSL it
// is an `evidence-buffer <size> <interval>` line.
type BufferSpec struct {
	Size     int      `json:"size"`
	Interval Duration `json:"interval"`
}

// validate rejects malformed buffer sections (mirroring core.New's checks
// so the error carries the pipeline name at parse time, not build time).
func (b *BufferSpec) validate(pipeline string) error {
	switch {
	case b.Size < 2:
		return fmt.Errorf("control: pipeline %q evidence-buffer: size %d below minimum 2", pipeline, b.Size)
	case b.Interval <= 0:
		return fmt.Errorf("control: pipeline %q evidence-buffer: non-positive interval %v", pipeline, time.Duration(b.Interval))
	}
	return nil
}

// equal reports semantic equality of two buffer sections.
func (b *BufferSpec) equal(q *BufferSpec) bool {
	if (b == nil) != (q == nil) {
		return false
	}
	return b == nil || *b == *q
}

// ObserveSpec is a pipeline's observability section. In the text DSL it
// is a single line of parenthesized groups:
//
//	observe trace(sample=1024, ring=256)
//
// Trace samples one decision in TraceSample (rounded up to a power of
// two so the sampling draw is one atomic add and a mask) into a
// lock-free ring of TraceRing records (also rounded to a power of two).
type ObserveSpec struct {
	// TraceSample is the decision sampling rate: one trace record per
	// TraceSample decisions (0 = obs.DefaultTraceSample, 1 = every
	// decision).
	TraceSample int `json:"trace_sample,omitempty"`

	// TraceRing is the trace ring capacity in records
	// (0 = obs.DefaultTraceRingSize).
	TraceRing int `json:"trace_ring,omitempty"`
}

// validate rejects malformed observe sections.
func (o *ObserveSpec) validate(pipeline string) error {
	switch {
	case o.TraceSample < 0:
		return fmt.Errorf("control: pipeline %q observe: negative trace sample", pipeline)
	case o.TraceRing < 0:
		return fmt.Errorf("control: pipeline %q observe: negative trace ring", pipeline)
	}
	return nil
}

// equal reports semantic equality of two observe sections.
func (o *ObserveSpec) equal(b *ObserveSpec) bool {
	if (o == nil) != (b == nil) {
		return false
	}
	return o == nil || *o == *b
}

// ClusterSpec is a pipeline's distributed-defense section. In the text
// DSL it is a single line of parenthesized groups, each optional:
//
//	cluster peers(http://10.0.0.2:9100/cluster/edge, …) exchange(1s) filter(bits=1048576, hashes=4)
//
// Peers lists the exchange endpoints this node pulls frames from (its
// partial view of the fleet — gossip converges transitively, so every
// node need not list every other). Exchange is the pull interval, the
// bounded staleness of fleet knowledge. Filter declares the Bloom
// geometry, which all fleet members must share for their rings to merge.
// Delta (delta(every=<k>)) turns the node's pulls into delta pulls —
// only evidence rows changed since the last pull — with a full-frame
// anti-entropy pull every kth exchange; omitted, every pull is a full
// frame.
type ClusterSpec struct {
	Peers        []string `json:"peers,omitempty"`
	Exchange     Duration `json:"exchange,omitempty"`
	FilterBits   int      `json:"filter_bits,omitempty"`
	FilterHashes int      `json:"filter_hashes,omitempty"`
	DeltaEvery   int      `json:"delta_every,omitempty"`
}

// validate rejects malformed cluster sections.
func (c *ClusterSpec) validate(pipeline string) error {
	switch {
	case c.Exchange < 0:
		return fmt.Errorf("control: pipeline %q cluster: negative exchange interval", pipeline)
	case c.FilterBits != 0 && (c.FilterBits < 64 || c.FilterBits&(c.FilterBits-1) != 0):
		return fmt.Errorf("control: pipeline %q cluster: filter bits %d must be a power of two ≥ 64", pipeline, c.FilterBits)
	case c.FilterHashes < 0 || c.FilterHashes > 16:
		return fmt.Errorf("control: pipeline %q cluster: filter hashes %d outside [0, 16]", pipeline, c.FilterHashes)
	case c.DeltaEvery < 0:
		return fmt.Errorf("control: pipeline %q cluster: negative delta interval %d", pipeline, c.DeltaEvery)
	}
	for _, p := range c.Peers {
		if strings.TrimSpace(p) == "" {
			return fmt.Errorf("control: pipeline %q cluster: empty peer URL", pipeline)
		}
	}
	return nil
}

// equal reports semantic equality of two cluster sections.
func (c *ClusterSpec) equal(b *ClusterSpec) bool {
	if (c == nil) != (b == nil) {
		return false
	}
	if c == nil {
		return true
	}
	if c.Exchange != b.Exchange || c.FilterBits != b.FilterBits ||
		c.FilterHashes != b.FilterHashes || c.DeltaEvery != b.DeltaEvery ||
		len(c.Peers) != len(b.Peers) {
		return false
	}
	for i := range c.Peers {
		if c.Peers[i] != b.Peers[i] {
			return false
		}
	}
	return true
}

// AdaptSpec is a pipeline's adaptive-defense section: the signal-plane
// shape plus the escalation ladder, in the declarative rule grammar (see
// feedback.ParseRule). In the text DSL these are `adapt <setting>` lines
// inside the pipeline block.
type AdaptSpec struct {
	// Interval is the controller's step cadence (0 = 1s).
	Interval Duration `json:"interval,omitempty"`

	// Capacity is the decision rate (decisions/s) treated as full load
	// for the "load" signal — and for load-adaptive policies via
	// load-shift. 0 pins load to 0.
	Capacity float64 `json:"capacity,omitempty"`

	// Hard marks challenges at or above this difficulty as "hard" for the
	// hard_solve_frac false-positive proxy (0 = 12).
	Hard int `json:"hard,omitempty"`

	// Window is the sliding-window length of the signal estimators, in
	// controller steps (0 = 10).
	Window int `json:"window,omitempty"`

	// LoadShift, when positive, wraps every policy the pipeline compiles
	// (the declared one and each escalation rung) in a load-adaptive
	// shift of up to this many difficulty levels at full load, fed by the
	// signal plane — the spec-addressable form of policy.NewLoadAdaptive.
	LoadShift int `json:"load_shift,omitempty"`

	// Rules is the escalation ladder in level order:
	// "escalate(when=<cond>, policy=<spec>[, hold=<dur>][, after=<n>][, unless=<cond>])".
	Rules []string `json:"rules,omitempty"`
}

// validate rejects malformed adapt sections.
func (a *AdaptSpec) validate(pipeline string) error {
	switch {
	case a.Interval < 0:
		return fmt.Errorf("control: pipeline %q adapt: negative interval", pipeline)
	case a.Capacity < 0:
		return fmt.Errorf("control: pipeline %q adapt: negative capacity", pipeline)
	case a.Hard < 0:
		return fmt.Errorf("control: pipeline %q adapt: negative hard difficulty", pipeline)
	case a.Window < 0:
		return fmt.Errorf("control: pipeline %q adapt: negative window", pipeline)
	case a.LoadShift < 0:
		return fmt.Errorf("control: pipeline %q adapt: negative load-shift", pipeline)
	case len(a.Rules) == 0 && a.LoadShift == 0:
		return fmt.Errorf("control: pipeline %q adapt: declares neither escalate rules nor load-shift", pipeline)
	}
	// The load signal is rate/capacity; without a declared capacity it is
	// pinned to 0, so a load-shift or load-conditioned rule would be
	// silently inert — reject rather than deploy a defense that can never
	// engage.
	needsLoad := a.LoadShift > 0
	for _, spec := range a.Rules {
		rule, err := feedback.ParseRule(spec)
		if err != nil {
			return fmt.Errorf("control: pipeline %q adapt: %w", pipeline, err)
		}
		if rule.When.Signal == feedback.SignalLoad ||
			(rule.Unless != nil && rule.Unless.Signal == feedback.SignalLoad) {
			needsLoad = true
		}
	}
	if needsLoad && a.Capacity <= 0 {
		return fmt.Errorf("control: pipeline %q adapt: load-shift and load-conditioned rules require `adapt capacity <decisions/s>`", pipeline)
	}
	return nil
}

// equal reports semantic equality of two adapt sections.
func (a *AdaptSpec) equal(b *AdaptSpec) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Interval != b.Interval || a.Capacity != b.Capacity || a.Hard != b.Hard ||
		a.Window != b.Window || a.LoadShift != b.LoadShift || len(a.Rules) != len(b.Rules) {
		return false
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			return false
		}
	}
	return true
}

// RouteSpec maps one request class onto a pipeline. Exactly one of
// PathPrefix and Tenant must be set.
type RouteSpec struct {
	// PathPrefix routes requests whose path starts with it; the longest
	// matching prefix wins. "/" is the catch-all.
	PathPrefix string `json:"path_prefix,omitempty"`

	// Tenant routes requests carrying this tenant key (e.g. from a
	// middleware-extracted header); tenant routes win over path routes.
	Tenant string `json:"tenant,omitempty"`

	// Pipeline names the PipelineSpec that serves the class.
	Pipeline string `json:"pipeline"`
}

// DeploymentSpec is the full control-plane document: named pipelines plus
// the routes mapping request classes onto them. A single-pipeline spec may
// omit Routes (an implicit "/" catch-all to that pipeline is assumed);
// otherwise a "/" catch-all route is required so no request can miss.
type DeploymentSpec struct {
	Pipelines []PipelineSpec `json:"pipelines"`
	Routes    []RouteSpec    `json:"routes,omitempty"`
}

// Pipeline looks up a pipeline spec by name.
func (d *DeploymentSpec) Pipeline(name string) (PipelineSpec, bool) {
	for _, p := range d.Pipelines {
		if p.Name == name {
			return p, true
		}
	}
	return PipelineSpec{}, false
}

// Validate rejects structurally inconsistent deployments: duplicate or
// missing names, routes onto unknown pipelines, no catch-all, and
// per-pipeline field errors.
func (d *DeploymentSpec) Validate() error {
	if len(d.Pipelines) == 0 {
		return fmt.Errorf("control: deployment declares no pipelines")
	}
	seen := make(map[string]bool, len(d.Pipelines))
	for i := range d.Pipelines {
		p := &d.Pipelines[i]
		if err := p.validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("control: duplicate pipeline %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(d.Routes) == 0 {
		if len(d.Pipelines) > 1 {
			return fmt.Errorf("control: %d pipelines but no routes; add route lines (including a \"/\" catch-all)", len(d.Pipelines))
		}
		return nil
	}
	catchAll := false
	routed := make(map[string]bool, len(d.Routes))
	for _, r := range d.Routes {
		switch {
		case r.PathPrefix == "" && r.Tenant == "":
			return fmt.Errorf("control: route onto %q has neither path prefix nor tenant", r.Pipeline)
		case r.PathPrefix != "" && r.Tenant != "":
			return fmt.Errorf("control: route onto %q sets both path prefix and tenant; use two routes", r.Pipeline)
		case r.PathPrefix != "" && !strings.HasPrefix(r.PathPrefix, "/"):
			return fmt.Errorf("control: path prefix %q must start with /", r.PathPrefix)
		}
		if !seen[r.Pipeline] {
			return fmt.Errorf("control: route %s targets unknown pipeline %q", routeLabel(r), r.Pipeline)
		}
		key := "path:" + r.PathPrefix
		if r.Tenant != "" {
			key = "tenant:" + r.Tenant
		}
		if routed[key] {
			return fmt.Errorf("control: duplicate route %s", routeLabel(r))
		}
		routed[key] = true
		if r.PathPrefix == "/" {
			catchAll = true
		}
	}
	if !catchAll {
		return fmt.Errorf("control: no catch-all route; add `route / <pipeline>`")
	}
	return nil
}

// routeLabel renders a route for error messages.
func routeLabel(r RouteSpec) string {
	if r.Tenant != "" {
		return fmt.Sprintf("tenant %q", r.Tenant)
	}
	return fmt.Sprintf("path %q", r.PathPrefix)
}

// validate rejects malformed pipeline specs.
func (p *PipelineSpec) validate() error {
	if p.Name == "" {
		return fmt.Errorf("control: pipeline without a name")
	}
	if p.Scorer == "" {
		return fmt.Errorf("control: pipeline %q names no scorer", p.Name)
	}
	switch {
	case p.Policy == "" && p.PolicyRules == "":
		return fmt.Errorf("control: pipeline %q names no policy (add `policy <spec>` or when/default rule lines)", p.Name)
	case p.Policy != "" && p.PolicyRules != "":
		return fmt.Errorf("control: pipeline %q declares both a policy spec and inline rules; pick one", p.Name)
	}
	if p.TTL < 0 {
		return fmt.Errorf("control: pipeline %q has negative ttl", p.Name)
	}
	if p.TrackerWindow < 0 {
		return fmt.Errorf("control: pipeline %q has negative window", p.Name)
	}
	if p.MaxDifficulty < 0 {
		return fmt.Errorf("control: pipeline %q has negative max-difficulty", p.Name)
	}
	if p.AuthCacheSlots < 0 {
		return fmt.Errorf("control: pipeline %q has negative auth-cache", p.Name)
	}
	if p.ClockSkew < 0 {
		return fmt.Errorf("control: pipeline %q has negative clock-skew", p.Name)
	}
	if _, err := puzzle.ParseBackendSpec(p.Puzzle); err != nil {
		return fmt.Errorf("control: pipeline %q puzzle: %w", p.Name, err)
	}
	if p.FailClosedScore != nil && (*p.FailClosedScore < 0 || *p.FailClosedScore > 10) {
		return fmt.Errorf("control: pipeline %q fail-closed score %v outside [0, 10]", p.Name, *p.FailClosedScore)
	}
	if p.Adapt != nil {
		if err := p.Adapt.validate(p.Name); err != nil {
			return err
		}
	}
	if p.Redeem != nil {
		if err := p.Redeem.validate(p.Name); err != nil {
			return err
		}
	}
	if p.EvidenceBuffer != nil {
		if err := p.EvidenceBuffer.validate(p.Name); err != nil {
			return err
		}
	}
	if p.Cluster != nil {
		if err := p.Cluster.validate(p.Name); err != nil {
			return err
		}
	}
	if p.Observe != nil {
		if err := p.Observe.validate(p.Name); err != nil {
			return err
		}
	}
	return nil
}

// canonicalPuzzle resolves a puzzle backend spec to its canonical render,
// so comparisons treat "" , "hashcash" and "hashcash(bits=64)" as the one
// backend they all name. Specs that fail to parse compare raw; validate()
// already rejected them everywhere it matters.
func canonicalPuzzle(spec string) string {
	b, err := puzzle.ParseBackendSpec(spec)
	if err != nil {
		return spec
	}
	return b.Spec()
}

// specEqual reports whether two (defaults-resolved) specs are identical
// in effect. Applies skip identical specs entirely, so a reload that
// touches one pipeline never resets another pipeline's stateful
// components (e.g. a rate scorer's accumulated window).
func specEqual(a, b PipelineSpec) bool {
	eq := func(x, y *float64) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || *x == *y
	}
	return a.Name == b.Name && a.Scorer == b.Scorer && a.Policy == b.Policy &&
		a.PolicyRules == b.PolicyRules && a.Source == b.Source &&
		a.TTL == b.TTL && a.MaxDifficulty == b.MaxDifficulty &&
		a.ReplayCache == b.ReplayCache && a.AuthCacheSlots == b.AuthCacheSlots &&
		a.ClockSkew == b.ClockSkew &&
		a.TrackerWindow == b.TrackerWindow &&
		canonicalPuzzle(a.Puzzle) == canonicalPuzzle(b.Puzzle) &&
		eq(a.BypassBelow, b.BypassBelow) && eq(a.FailClosedScore, b.FailClosedScore) &&
		a.Adapt.equal(b.Adapt) && a.Redeem.equal(b.Redeem) &&
		a.EvidenceBuffer.equal(b.EvidenceBuffer) && a.Cluster.equal(b.Cluster) &&
		a.Observe.equal(b.Observe)
}

// swappableEqual reports whether only hot-swappable fields differ between
// the two specs — the condition under which Apply may proceed without a
// restart.
func (p PipelineSpec) swappableEqual(q PipelineSpec) error {
	switch {
	case p.TTL != q.TTL:
		return fmt.Errorf("ttl %v → %v", time.Duration(p.TTL), time.Duration(q.TTL))
	case p.MaxDifficulty != q.MaxDifficulty:
		return fmt.Errorf("max-difficulty %d → %d", p.MaxDifficulty, q.MaxDifficulty)
	case p.ReplayCache != q.ReplayCache:
		return fmt.Errorf("replay-cache %d → %d", p.ReplayCache, q.ReplayCache)
	case p.AuthCacheSlots != q.AuthCacheSlots:
		return fmt.Errorf("auth-cache %d → %d", p.AuthCacheSlots, q.AuthCacheSlots)
	case p.ClockSkew != q.ClockSkew:
		return fmt.Errorf("clock-skew %v → %v", time.Duration(p.ClockSkew), time.Duration(q.ClockSkew))
	case p.TrackerWindow != q.TrackerWindow:
		return fmt.Errorf("window %v → %v", time.Duration(p.TrackerWindow), time.Duration(q.TrackerWindow))
	case canonicalPuzzle(p.Puzzle) != canonicalPuzzle(q.Puzzle):
		return fmt.Errorf("puzzle %s → %s", canonicalPuzzle(p.Puzzle), canonicalPuzzle(q.Puzzle))
	case p.Redeem.halfLife() != q.Redeem.halfLife():
		return fmt.Errorf("redeem half-life %v → %v",
			time.Duration(p.Redeem.halfLife()), time.Duration(q.Redeem.halfLife()))
	case !p.EvidenceBuffer.equal(q.EvidenceBuffer):
		return fmt.Errorf("evidence-buffer changed")
	case !p.Cluster.equal(q.Cluster):
		return fmt.Errorf("cluster changed")
	}
	return nil
}

// ParseDeployment parses a deployment spec in either form: JSON (first
// non-space byte '{') or the line-oriented text DSL. The text grammar, one
// statement per line (with #-comments and blank lines skipped):
//
//	pipeline <name>            opens a pipeline block; the lines below
//	                           configure it until the next top-level statement
//	  scorer <spec>            e.g. dabr, hybrid(saturation=4)     (required)
//	  policy <spec>            registry syntax, e.g. policy3(epsilon=2.5)
//	  when score <op> <n> use <d>   inline policy rules (the policy DSL);
//	  default <d>                   an alternative to `policy`
//	  source <spec>            default: tracker
//	  puzzle <spec>            puzzle backend: hashcash(bits=22) or
//	                           balloon(space=256, time=2); default hashcash
//	  ttl <duration>           e.g. 30s
//	  max-difficulty <n>
//	  bypass-below <score>
//	  fail-closed <score>
//	  replay-cache <n>         negative disables replay protection
//	  auth-cache <slots>       authenticated-challenge cache size (default
//	                           2048; rounded to a power of two)
//	  clock-skew <duration>
//	  window <duration>        per-pipeline behavior-tracker window (default:
//	                           the registry's shared tracker)
//	  adapt escalate(when=<cond>, policy=<spec>, …)   escalation ladder rung
//	  adapt interval <duration>    controller step cadence (default 1s)
//	  adapt capacity <rate>        decisions/s treated as full load
//	  adapt hard <n>               hard-difficulty threshold for the FP proxy
//	  adapt window <n>             signal window length in steps
//	  adapt load-shift <n>         load-adaptive difficulty shift at full load
//	  redeem(max=<drop>, half-credit=<credit>, half-life=<duration>)
//	                           behavioral redemption over the scorer; every
//	                           parameter optional (redeem alone = defaults)
//	  evidence-buffer <size> <interval>   buffered evidence write-back,
//	                           e.g. evidence-buffer 256 5ms
//	  cluster peers(<url>, …) exchange(<duration>) filter(bits=<n>, hashes=<n>)
//	                           distributed defense plane: pull-based peer
//	                           exchange of replay filters, evidence digests,
//	                           and fleet counters; every group optional
//	  observe trace(sample=<n>, ring=<n>)
//	                           sampled decision tracing: one trace record per
//	                           <sample> decisions into a ring of <ring>
//	                           records (both rounded up to powers of two;
//	                           both optional, zero = defaults)
//	route <prefix> <pipeline>  longest matching path prefix wins; "/" is
//	                           the catch-all (required with >1 pipeline)
//	tenant <key> <pipeline>    tenant routes win over path routes
func ParseDeployment(src string) (*DeploymentSpec, error) {
	trimmed := strings.TrimSpace(src)
	if strings.HasPrefix(trimmed, "{") {
		var d DeploymentSpec
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&d); err != nil {
			return nil, fmt.Errorf("control: parse JSON spec: %w", err)
		}
		if dec.More() {
			// Trailing content (e.g. two concatenated specs) would mean
			// silently applying only the first document.
			return nil, fmt.Errorf("control: parse JSON spec: trailing content after the deployment document")
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		return &d, nil
	}
	return parseDeploymentText(src)
}

// parseDeploymentText compiles the text DSL form.
func parseDeploymentText(src string) (*DeploymentSpec, error) {
	d := &DeploymentSpec{}
	var cur *PipelineSpec // open pipeline block, nil at top level
	var rules []string    // accumulated inline when/default lines
	var seen map[string]bool
	closeBlock := func() {
		if cur != nil {
			cur.PolicyRules = strings.Join(rules, "\n")
			d.Pipelines = append(d.Pipelines, *cur)
			cur, rules, seen = nil, nil, nil
		}
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		stmt, args := fields[0], fields[1:]
		// The redeem statement's parameter list may attach directly to the
		// keyword — redeem(max=6, …) — so the keyword needs splitting off
		// before dispatch.
		if stmt != "redeem" && strings.HasPrefix(stmt, "redeem(") {
			args = append([]string{strings.TrimPrefix(stmt, "redeem")}, args...)
			stmt = "redeem"
		}
		switch stmt {
		case "pipeline":
			closeBlock()
			if len(args) != 1 {
				return nil, fmt.Errorf("control: spec line %d: want 'pipeline <name>'", lineNo+1)
			}
			cur = &PipelineSpec{Name: args[0]}
			seen = make(map[string]bool)
		case "route", "tenant":
			closeBlock()
			if len(args) != 2 {
				return nil, fmt.Errorf("control: spec line %d: want '%s <%s> <pipeline>'",
					lineNo+1, stmt, map[string]string{"route": "prefix", "tenant": "key"}[stmt])
			}
			r := RouteSpec{Pipeline: args[1]}
			if stmt == "route" {
				r.PathPrefix = args[0]
			} else {
				r.Tenant = args[0]
			}
			d.Routes = append(d.Routes, r)
		case "scorer", "policy", "source", "puzzle", "ttl", "max-difficulty",
			"bypass-below", "fail-closed", "replay-cache", "auth-cache", "clock-skew", "window",
			"when", "default", "adapt", "redeem", "evidence-buffer", "cluster", "observe":
			if cur == nil {
				return nil, fmt.Errorf("control: spec line %d: %q outside a pipeline block", lineNo+1, stmt)
			}
			if err := cur.applyStatement(stmt, args, line, &rules, seen); err != nil {
				return nil, fmt.Errorf("control: spec line %d: %w", lineNo+1, err)
			}
		default:
			return nil, fmt.Errorf("control: spec line %d: unknown statement %q", lineNo+1, stmt)
		}
	}
	closeBlock()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// applyStatement folds one pipeline-block line into the spec. seen
// tracks which scalar statements the block already set: every statement
// except the when/default rule lines and adapt lines (which do their own
// per-setting bookkeeping) errors on repetition, so a merge artifact like
// two bypass-below lines fails loudly instead of last-wins.
func (p *PipelineSpec) applyStatement(stmt string, args []string, line string, rules *[]string, seen map[string]bool) error {
	if stmt != "when" && stmt != "default" && stmt != "adapt" {
		if seen[stmt] {
			return fmt.Errorf("duplicate %s", stmt)
		}
		seen[stmt] = true
	}
	if stmt == "adapt" {
		return p.applyAdaptStatement(args, seen)
	}
	joined := strings.Join(args, " ") // component specs may contain spaces: policy3(epsilon=2.5, seed=1)
	one := func(dst *string, what string) error {
		if joined == "" {
			return fmt.Errorf("want '%s <%s>'", stmt, what)
		}
		*dst = joined
		return nil
	}
	switch stmt {
	case "redeem":
		rs, err := parseRedeem(joined)
		if err != nil {
			return err
		}
		p.Redeem = rs
		return nil
	case "cluster":
		cs, err := parseCluster(joined)
		if err != nil {
			return err
		}
		p.Cluster = cs
		return nil
	case "observe":
		os, err := parseObserve(joined)
		if err != nil {
			return err
		}
		p.Observe = os
		return nil
	case "evidence-buffer":
		if len(args) != 2 {
			return fmt.Errorf("want 'evidence-buffer <size> <interval>'")
		}
		size, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("evidence-buffer size: %w", err)
		}
		iv, err := time.ParseDuration(args[1])
		if err != nil {
			return fmt.Errorf("evidence-buffer interval: %w", err)
		}
		p.EvidenceBuffer = &BufferSpec{Size: size, Interval: Duration(iv)}
		return nil
	case "scorer":
		return one(&p.Scorer, "spec")
	case "policy":
		return one(&p.Policy, "spec")
	case "source":
		return one(&p.Source, "spec")
	case "puzzle":
		return one(&p.Puzzle, "spec")
	case "when", "default":
		*rules = append(*rules, line)
		return nil
	case "ttl", "clock-skew", "window":
		if len(args) != 1 {
			return fmt.Errorf("want '%s <duration>'", stmt)
		}
		v, err := time.ParseDuration(args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		switch stmt {
		case "ttl":
			p.TTL = Duration(v)
		case "clock-skew":
			p.ClockSkew = Duration(v)
		case "window":
			p.TrackerWindow = Duration(v)
		}
		return nil
	case "max-difficulty", "replay-cache", "auth-cache":
		if len(args) != 1 {
			return fmt.Errorf("want '%s <n>'", stmt)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		switch stmt {
		case "max-difficulty":
			p.MaxDifficulty = n
		case "replay-cache":
			p.ReplayCache = n
		default:
			p.AuthCacheSlots = n
		}
		return nil
	case "bypass-below", "fail-closed":
		if len(args) != 1 {
			return fmt.Errorf("want '%s <score>'", stmt)
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		if stmt == "bypass-below" {
			p.BypassBelow = &v
		} else {
			p.FailClosedScore = &v
		}
		return nil
	}
	return fmt.Errorf("unknown statement %q", stmt) // unreachable: caller dispatched
}

// parseRedeem parses the redeem statement's parameter list: an optional
// parenthesized, comma- or space-separated k=v list ("(max=6,
// half-credit=26, half-life=5m)"). An empty list keeps every default.
func parseRedeem(arg string) (*RedeemSpec, error) {
	rs := &RedeemSpec{}
	arg = strings.TrimSpace(arg)
	if strings.HasPrefix(arg, "(") {
		if !strings.HasSuffix(arg, ")") {
			return nil, fmt.Errorf("redeem: unclosed parameter list %q", arg)
		}
		arg = arg[1 : len(arg)-1]
	}
	for _, tok := range strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == ' ' }) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || v == "" {
			return nil, fmt.Errorf("redeem: want k=v, got %q", tok)
		}
		switch k {
		case "max", "half-credit":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("redeem %s: %w", k, err)
			}
			if k == "max" {
				rs.Max = f
			} else {
				rs.HalfCredit = f
			}
		case "half-life":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("redeem half-life: %w", err)
			}
			rs.HalfLife = Duration(d)
		default:
			return nil, fmt.Errorf("redeem: unknown parameter %q (want max, half-credit, half-life)", k)
		}
	}
	return rs, nil
}

// parseCluster parses the cluster statement's group list: zero or more
// parenthesized groups — peers(<url>, …), exchange(<duration>),
// filter(bits=<n>, hashes=<n>), delta(every=<k>) — in any order. A bare
// `cluster` line enables the plane with every default (no peers: the
// node only serves its own frame endpoint until peers pull from it).
func parseCluster(arg string) (*ClusterSpec, error) {
	cs := &ClusterSpec{}
	rest := strings.TrimSpace(arg)
	seen := map[string]bool{}
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open <= 0 {
			return nil, fmt.Errorf("cluster: want '<group>(…)', got %q", rest)
		}
		name := strings.TrimSpace(rest[:open])
		end := strings.IndexByte(rest, ')')
		if end < open {
			return nil, fmt.Errorf("cluster: unclosed group %q", name)
		}
		body := rest[open+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate group %q", name)
		}
		seen[name] = true
		switch name {
		case "peers":
			cs.Peers = append(cs.Peers, strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' })...)
		case "exchange":
			d, err := time.ParseDuration(strings.TrimSpace(body))
			if err != nil {
				return nil, fmt.Errorf("cluster exchange: %w", err)
			}
			cs.Exchange = Duration(d)
		case "filter":
			for _, tok := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' }) {
				k, v, ok := strings.Cut(tok, "=")
				if !ok || v == "" {
					return nil, fmt.Errorf("cluster filter: want k=v, got %q", tok)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("cluster filter %s: %w", k, err)
				}
				switch k {
				case "bits":
					cs.FilterBits = n
				case "hashes":
					cs.FilterHashes = n
				default:
					return nil, fmt.Errorf("cluster filter: unknown parameter %q (want bits, hashes)", k)
				}
			}
		case "delta":
			for _, tok := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' }) {
				k, v, ok := strings.Cut(tok, "=")
				if !ok || v == "" {
					return nil, fmt.Errorf("cluster delta: want k=v, got %q", tok)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("cluster delta %s: %w", k, err)
				}
				switch k {
				case "every":
					cs.DeltaEvery = n
				default:
					return nil, fmt.Errorf("cluster delta: unknown parameter %q (want every)", k)
				}
			}
		default:
			return nil, fmt.Errorf("cluster: unknown group %q (want peers, exchange, filter, delta)", name)
		}
	}
	return cs, nil
}

// parseObserve parses the observe statement's group list: currently the
// single group trace(sample=<n>, ring=<n>), both parameters optional
// (zero keeps the obs package's default). A bare `observe trace` or
// `observe trace()` enables tracing at the defaults.
func parseObserve(arg string) (*ObserveSpec, error) {
	os := &ObserveSpec{}
	rest := strings.TrimSpace(arg)
	if rest == "" {
		return nil, fmt.Errorf("observe: want 'observe trace(sample=<n>, ring=<n>)'")
	}
	seen := map[string]bool{}
	for rest != "" {
		name := rest
		body := ""
		if open := strings.IndexByte(rest, '('); open >= 0 {
			end := strings.IndexByte(rest, ')')
			if end < open {
				return nil, fmt.Errorf("observe: unclosed group %q", strings.TrimSpace(rest[:open]))
			}
			name = strings.TrimSpace(rest[:open])
			body = rest[open+1 : end]
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			rest = ""
		}
		if name == "" {
			return nil, fmt.Errorf("observe: want '<group>(…)'")
		}
		if seen[name] {
			return nil, fmt.Errorf("observe: duplicate group %q", name)
		}
		seen[name] = true
		switch name {
		case "trace":
			for _, tok := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' }) {
				k, v, ok := strings.Cut(tok, "=")
				if !ok || v == "" {
					return nil, fmt.Errorf("observe trace: want k=v, got %q", tok)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("observe trace %s: %w", k, err)
				}
				switch k {
				case "sample":
					os.TraceSample = n
				case "ring":
					os.TraceRing = n
				default:
					return nil, fmt.Errorf("observe trace: unknown parameter %q (want sample, ring)", k)
				}
			}
		default:
			return nil, fmt.Errorf("observe: unknown group %q (want trace)", name)
		}
	}
	return os, nil
}

// applyAdaptStatement folds one "adapt <setting>" line into the
// pipeline's adapt section. Escalate rules append in declaration order
// (that order is the ladder); scalar settings reject repetition via seen,
// namespaced so they cannot collide with top-level statements.
func (p *PipelineSpec) applyAdaptStatement(args []string, seen map[string]bool) error {
	if len(args) == 0 {
		return fmt.Errorf("want 'adapt <setting…>'")
	}
	if p.Adapt == nil {
		p.Adapt = &AdaptSpec{}
	}
	joined := strings.Join(args, " ")
	if strings.HasPrefix(joined, "escalate") {
		// Validate eagerly so the error carries the spec line number.
		if _, err := feedback.ParseRule(joined); err != nil {
			return err
		}
		p.Adapt.Rules = append(p.Adapt.Rules, joined)
		return nil
	}
	sub := args[0]
	key := "adapt " + sub
	if seen[key] {
		return fmt.Errorf("duplicate %s", key)
	}
	seen[key] = true
	if len(args) != 2 {
		return fmt.Errorf("want 'adapt %s <value>'", sub)
	}
	val := args[1]
	switch sub {
	case "interval":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("adapt interval: %w", err)
		}
		p.Adapt.Interval = Duration(d)
	case "capacity":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("adapt capacity: %w", err)
		}
		p.Adapt.Capacity = v
	case "hard", "window", "load-shift":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("adapt %s: %w", sub, err)
		}
		switch sub {
		case "hard":
			p.Adapt.Hard = n
		case "window":
			p.Adapt.Window = n
		case "load-shift":
			p.Adapt.LoadShift = n
		}
	default:
		return fmt.Errorf("unknown adapt setting %q (want escalate(…), interval, capacity, hard, window, load-shift)", sub)
	}
	return nil
}

// Marshal renders the deployment in canonical JSON (the form the admin
// /spec endpoint serves and operators can round-trip through
// ParseDeployment). Deliberately not named MarshalText: encoding/json
// would treat that as a TextMarshaler implementation and recurse.
func (d *DeploymentSpec) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
