package control

import (
	"context"
	"strings"
	"testing"

	"aipow/internal/core"
	"aipow/internal/puzzle"
)

func TestPuzzleSpecParsing(t *testing.T) {
	dep, err := ParseDeployment(`
pipeline signup
  scorer threat
  policy policy2
  puzzle balloon(space=8, time=1)
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.Pipelines[0].Puzzle; got != "balloon(space=8, time=1)" {
		t.Fatalf("puzzle = %q", got)
	}

	// JSON round-trips through the canonical form.
	buf, err := dep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !specEqual(dep.Pipelines[0], back.Pipelines[0]) {
		t.Fatalf("puzzle lost in JSON round-trip: %+v vs %+v", dep.Pipelines[0], back.Pipelines[0])
	}

	for _, bad := range []string{
		"pipeline p\n  scorer s\n  policy policy2\n  puzzle scrypt\n",
		"pipeline p\n  scorer s\n  policy policy2\n  puzzle balloon(space=1)\n",
		"pipeline p\n  scorer s\n  policy policy2\n  puzzle hashcash\n  puzzle balloon\n", // duplicate
	} {
		if _, err := ParseDeployment(bad); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

func TestPuzzleIsNotHotSwappable(t *testing.T) {
	a := PipelineSpec{Name: "p", Scorer: "s", Policy: "policy2"}
	b := a
	b.Puzzle = "balloon(space=8, time=1)"
	if err := a.swappableEqual(b); err == nil {
		t.Fatal("puzzle change passed swappableEqual")
	}
	if specEqual(a, b) {
		t.Fatal("specEqual ignores the puzzle")
	}

	// Spelling the default explicitly is not a change: "", "hashcash" and
	// the canonical hashcash spec all select the same backend, so none of
	// them forces a rebuild.
	c := a
	c.Puzzle = "hashcash"
	if err := a.swappableEqual(c); err != nil {
		t.Fatalf("explicit default hashcash rebuilt the pipeline: %v", err)
	}
	if !specEqual(a, c) {
		t.Fatal("specEqual distinguishes equivalent puzzle spellings")
	}
}

// TestPuzzleChangeRebuildsPipeline pins the swap-matrix row: a puzzle
// change is applied by rebuild, not hot-swap — the gatekeeper replaces
// the pipeline, and challenges issued by the old backend stop verifying
// (fail-closed, exactly like a key rotation).
func TestPuzzleChangeRebuildsPipeline(t *testing.T) {
	reg := newTestRegistry(t)
	gk, err := NewGatekeeper(reg, gkSpec())
	if err != nil {
		t.Fatal(err)
	}
	web := gk.Route("/", "")
	dec, err := web.Decide(core.RequestContext{IP: "10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := puzzle.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		t.Fatal(err)
	}

	spec := gkSpec()
	spec.Pipelines[0].Puzzle = "balloon(space=8, time=1)"
	if err := gk.Apply(spec); err != nil {
		t.Fatal(err)
	}
	rebuilt := gk.Route("/", "")
	if rebuilt == web {
		t.Fatal("puzzle change did not rebuild the pipeline")
	}
	if err := rebuilt.Verify(sol, "10.0.0.1"); err == nil {
		t.Fatal("old backend's solution redeemed after the backend swap")
	}

	// Direct Apply on the pipeline object refuses the same change.
	p, _ := gk.Pipeline("web")
	next := p.Spec()
	next.Puzzle = ""
	if err := p.Apply(next); err == nil || !strings.Contains(err.Error(), "not hot-swappable") {
		t.Fatalf("puzzle revert hot-swapped: %v", err)
	}
}

// TestCrossBackendRouteRejected pins per-route backend enforcement: with
// a cheap hashcash route and a memory-hard balloon route in one
// deployment, a solution from either route never redeems on the other —
// the backends' disjoint wire formats reject the swap even before the
// per-pipeline derived keys would.
func TestCrossBackendRouteRejected(t *testing.T) {
	reg := newTestRegistry(t)
	spec := gkSpec()
	spec.Pipelines[1].Puzzle = "balloon(space=8, time=1)"
	gk, err := NewGatekeeper(reg, spec)
	if err != nil {
		t.Fatal(err)
	}
	web := gk.Route("/", "")
	api := gk.Route("/api/x", "")

	webDec, err := web.Decide(core.RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if webDec.Challenge.Version != puzzle.Version1 {
		t.Fatalf("web challenge version = %d, want Version1", webDec.Challenge.Version)
	}
	apiDec, err := api.Decide(core.RequestContext{IP: "10.0.0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if apiDec.Challenge.Version != puzzle.Version2 ||
		apiDec.Challenge.Backend != puzzle.BackendBalloon {
		t.Fatalf("api challenge = v%d backend %v, want v2 balloon",
			apiDec.Challenge.Version, apiDec.Challenge.Backend)
	}

	solver := puzzle.NewSolver()
	webSol, _, err := solver.Solve(context.Background(), webDec.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	apiSol, _, err := solver.Solve(context.Background(), apiDec.Challenge)
	if err != nil {
		t.Fatal(err)
	}

	if err := web.Verify(webSol, "10.0.0.9"); err != nil {
		t.Fatalf("hashcash solution rejected on its own route: %v", err)
	}
	if err := api.Verify(apiSol, "10.0.0.9"); err != nil {
		t.Fatalf("balloon solution rejected on its own route: %v", err)
	}
	if err := web.Verify(apiSol, "10.0.0.9"); err == nil {
		t.Fatal("balloon solution redeemed on the hashcash route")
	}
	if err := api.Verify(webSol, "10.0.0.9"); err == nil {
		t.Fatal("hashcash solution redeemed on the balloon route")
	}
}
