package control

import (
	"strings"
	"sync"
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/metrics"
	"aipow/internal/obs"
)

func TestParseDeploymentObserveText(t *testing.T) {
	dep, err := ParseDeployment(`
pipeline web
  scorer threat
  source store
  policy policy1
  observe trace(sample=64, ring=128)
`)
	if err != nil {
		t.Fatal(err)
	}
	o := dep.Pipelines[0].Observe
	if o == nil {
		t.Fatal("observe section not parsed")
	}
	if o.TraceSample != 64 || o.TraceRing != 128 {
		t.Fatalf("observe spec = %+v, want sample 64 ring 128", o)
	}

	// The canonical JSON form round-trips.
	buf, err := dep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatalf("re-parse canonical JSON: %v", err)
	}
	if !dep2.Pipelines[0].Observe.equal(o) {
		t.Fatalf("observe section changed across the JSON round trip: %+v vs %+v", dep2.Pipelines[0].Observe, o)
	}
}

func TestParseDeploymentObserveErrors(t *testing.T) {
	cases := []struct{ name, line, wantErr string }{
		{"bare", "observe", "want 'observe trace"},
		{"unknown group", "observe span(x=1)", "unknown group"},
		{"unknown param", "observe trace(wat=1)", "unknown parameter"},
		{"bad value", "observe trace(sample=abc)", "invalid syntax"},
		{"unclosed", "observe trace(sample=1", "unclosed group"},
		{"duplicate group", "observe trace(sample=1) trace(ring=2)", "duplicate group"},
		{"negative", "observe trace(sample=-1)", "negative trace sample"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "pipeline p\n  scorer threat\n  policy policy1\n  " + tc.line + "\n"
			_, err := ParseDeployment(src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestObserveSpecBuildsTraceRing(t *testing.T) {
	reg := newTestRegistry(t)
	p, err := reg.Build(PipelineSpec{
		Name: "web", Scorer: "threat", Source: "store", Policy: "policy2",
		Observe: &ObserveSpec{TraceSample: 1, TraceRing: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := p.Framework().TraceRing()
	if ring == nil {
		t.Fatal("observe section built no trace ring")
	}
	if _, err := p.Framework().Decide(core.RequestContext{IP: "10.0.0.9"}); err != nil {
		t.Fatal(err)
	}
	samples := ring.Snapshot()
	if len(samples) != 1 || samples[0].Kind != "decide" {
		t.Fatalf("trace samples = %+v, want one decide", samples)
	}
}

func TestObserveHotSwap(t *testing.T) {
	reg := newTestRegistry(t)
	base := PipelineSpec{Name: "web", Scorer: "threat", Source: "store", Policy: "policy2"}
	p, err := reg.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	if p.Framework().TraceRing() != nil {
		t.Fatal("tracing on without an observe section")
	}

	// Adding the section is a hot swap, not a rebuild.
	withTrace := base
	withTrace.Observe = &ObserveSpec{TraceSample: 1, TraceRing: 16}
	if err := p.Apply(withTrace); err != nil {
		t.Fatalf("observe apply not hot-swappable: %v", err)
	}
	ring := p.Framework().TraceRing()
	if ring == nil {
		t.Fatal("apply did not install a trace ring")
	}

	// An unrelated swappable change keeps the running ring.
	bypass := 20.0
	unrelated := withTrace
	unrelated.BypassBelow = &bypass
	if err := p.Apply(unrelated); err != nil {
		t.Fatal(err)
	}
	if p.Framework().TraceRing() != ring {
		t.Fatal("unrelated apply replaced the trace ring")
	}

	// Removing the section disables tracing.
	if err := p.Apply(base); err != nil {
		t.Fatal(err)
	}
	if p.Framework().TraceRing() != nil {
		t.Fatal("removing the observe section left tracing on")
	}
}

func TestGatekeeperEmitsSpecAndAdaptEvents(t *testing.T) {
	var mu sync.Mutex
	var events []obs.Event
	clock := newManualClock()
	reg := newTestRegistry(t)
	reg.now = clock.now
	reg.events = func(e obs.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	dep, err := ParseDeployment(adaptSpecText)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()

	kinds := func() []string {
		mu.Lock()
		defer mu.Unlock()
		out := make([]string, len(events))
		for i, e := range events {
			out[i] = e.Kind
		}
		return out
	}
	if got := kinds(); len(got) != 1 || got[0] != obs.EventSpecApply {
		t.Fatalf("events after build = %v, want [spec.apply]", got)
	}

	// Escalate through the control plane: the adapt event carries the
	// pipeline name and moves the framework's trace rung.
	p, _ := gk.Pipeline("web")
	if err := gk.StepControllers(clock.now()); err != nil {
		t.Fatal(err)
	}
	drive(t, p, 100)
	clock.advance(time.Second)
	if err := gk.StepControllers(clock.now()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	last := events[len(events)-1]
	mu.Unlock()
	if last.Kind != obs.EventAdaptEscalate || last.Pipeline != "web" || last.To != 1 {
		t.Fatalf("escalate event = %+v", last)
	}
	if got := p.Framework().TraceRung(); got != 1 {
		t.Fatalf("trace rung = %d after escalation, want 1", got)
	}

	// A changed re-apply emits spec.apply; a rollback emits spec.rollback.
	dep2, err := ParseDeployment(strings.Replace(adaptSpecText, "capacity 100", "capacity 200", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := gk.Apply(dep2); err != nil {
		t.Fatal(err)
	}
	if _, err := gk.Rollback(); err != nil {
		t.Fatal(err)
	}
	got := kinds()
	if len(got) < 4 || got[len(got)-2] != obs.EventSpecApply || got[len(got)-1] != obs.EventSpecRollback {
		t.Fatalf("event kinds = %v, want …, spec.apply, spec.rollback", got)
	}
}

func TestGatekeeperExposition(t *testing.T) {
	reg := newTestRegistry(t)
	dep, err := ParseDeployment(adaptSpecText)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()
	p, _ := gk.Pipeline("web")
	drive(t, p, 3)

	e := metrics.NewExposition()
	gk.ExpositionInto(e, "node-1")
	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := metrics.ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`aipow_issued{pipeline="web",node="node-1"} 3`,
		`aipow_serving_latency_ms_count{pipeline="web",node="node-1",stage="decide"} 3`,
		`aipow_adapt_level{pipeline="web",node="node-1"}`,
		`# TYPE aipow_serving_latency_ms histogram`,
		`# TYPE aipow_issued counter`,
		`# TYPE aipow_adapt_level gauge`,
		`# TYPE aipow_tracker_entries gauge`,
		`# TYPE aipow_tracker_slab_utilization gauge`,
		`# TYPE aipow_tracker_evictions counter`,
		`aipow_tracker_capacity{pipeline="web",node="node-1"}`,
		`aipow_tracker_slab_slots{pipeline="web",node="node-1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
