package control

import (
	"strings"
	"testing"
	"time"
)

// specText is a representative two-pipeline deployment in the text DSL,
// exercising component params, inline rules, limits, and both route kinds.
const specText = `
# demo deployment
pipeline api
  scorer threat
  policy policy2
  source store
  ttl 45s
  max-difficulty 18
  bypass-below 1.5
  fail-closed 9
  replay-cache 1024
  auth-cache 8192
  clock-skew 3s

pipeline static
  scorer threat
  when score >= 8 use 14
  when score < 2 use 1
  default 3

route /api/ api
route / static
tenant gold api
`

func TestParseDeploymentText(t *testing.T) {
	d, err := ParseDeployment(specText)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pipelines) != 2 || len(d.Routes) != 3 {
		t.Fatalf("parsed %d pipelines, %d routes", len(d.Pipelines), len(d.Routes))
	}
	api, ok := d.Pipeline("api")
	if !ok {
		t.Fatal("pipeline api missing")
	}
	if api.Scorer != "threat" || api.Policy != "policy2" || api.Source != "store" {
		t.Fatalf("api components = %q/%q/%q", api.Scorer, api.Policy, api.Source)
	}
	if time.Duration(api.TTL) != 45*time.Second || api.MaxDifficulty != 18 ||
		api.ReplayCache != 1024 || api.AuthCacheSlots != 8192 ||
		time.Duration(api.ClockSkew) != 3*time.Second {
		t.Fatalf("api limits = %+v", api)
	}
	if api.BypassBelow == nil || *api.BypassBelow != 1.5 {
		t.Fatalf("api bypass = %v", api.BypassBelow)
	}
	if api.FailClosedScore == nil || *api.FailClosedScore != 9 {
		t.Fatalf("api fail-closed = %v", api.FailClosedScore)
	}
	static, _ := d.Pipeline("static")
	if static.Policy != "" || !strings.Contains(static.PolicyRules, "when score >= 8 use 14") {
		t.Fatalf("static inline rules = %q", static.PolicyRules)
	}
	if d.Routes[2].Tenant != "gold" || d.Routes[2].Pipeline != "api" {
		t.Fatalf("tenant route = %+v", d.Routes[2])
	}
}

func TestParseDeploymentJSONRoundTrip(t *testing.T) {
	d, err := ParseDeployment(specText)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDeployment(string(buf))
	if err != nil {
		t.Fatalf("reparse canonical JSON: %v", err)
	}
	if len(d2.Pipelines) != len(d.Pipelines) || len(d2.Routes) != len(d.Routes) {
		t.Fatalf("round trip lost structure: %+v", d2)
	}
	api, _ := d2.Pipeline("api")
	if time.Duration(api.TTL) != 45*time.Second {
		t.Fatalf("round trip lost ttl: %v", time.Duration(api.TTL))
	}
}

func TestParseDeploymentErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "no pipelines"},
		{"unknown statement", "pipeline p\n scorer s\n policy policy2\nfrobnicate 3\n", "unknown statement"},
		{"statement outside block", "scorer s\n", "outside a pipeline block"},
		{"missing scorer", "pipeline p\n policy policy2\n", "names no scorer"},
		{"missing policy", "pipeline p\n scorer s\n", "names no policy"},
		{"policy and rules", "pipeline p\n scorer s\n policy policy2\n when score >= 5 use 9\n default 2\n", "both a policy spec and inline rules"},
		{"duplicate pipeline", "pipeline p\n scorer s\n policy policy2\npipeline p\n scorer s\n policy policy2\n", "duplicate pipeline"},
		{"duplicate field", "pipeline p\n scorer s\n scorer t\n policy policy2\n", "duplicate scorer"},
		{"duplicate scalar", "pipeline p\n scorer s\n policy policy2\n bypass-below 1\n bypass-below 7\n", "duplicate bypass-below"},
		{"duplicate ttl", "pipeline p\n scorer s\n policy policy2\n ttl 30s\n ttl 60s\n", "duplicate ttl"},
		{"bad duration", "pipeline p\n scorer s\n policy policy2\n ttl fast\n", "ttl"},
		{"bad difficulty", "pipeline p\n scorer s\n policy policy2\n max-difficulty high\n", "max-difficulty"},
		{"negative ttl", "pipeline p\n scorer s\n policy policy2\n ttl -5s\n", "negative ttl"},
		{"route unknown pipeline", "pipeline p\n scorer s\n policy policy2\nroute / q\n", "unknown pipeline"},
		{"route without slash", "pipeline p\n scorer s\n policy policy2\nroute api p\n", "must start with /"},
		{"no catch-all", "pipeline p\n scorer s\n policy policy2\nroute /api p\n", "no catch-all"},
		{"duplicate route", "pipeline p\n scorer s\n policy policy2\nroute / p\nroute / p\n", "duplicate route"},
		{"multi pipeline no routes", "pipeline p\n scorer s\n policy policy2\npipeline q\n scorer s\n policy policy2\n", "no routes"},
		{"fail-closed range", "pipeline p\n scorer s\n policy policy2\n fail-closed 11\n", "outside [0, 10]"},
		{"bad route arity", "pipeline p\n scorer s\n policy policy2\nroute /\n", "want 'route"},
		{"bad json", `{"pipelines": [{"name": 3}]}`, "parse JSON spec"},
		{"unknown json field", `{"pipelines": [{"name": "p", "scorer": "s", "policy": "policy2", "wat": 1}]}`, "parse JSON spec"},
		{"json bad duration", `{"pipelines": [{"name": "p", "scorer": "s", "policy": "policy2", "ttl": "soon"}]}`, "bad duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDeployment(tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSwappableEqual(t *testing.T) {
	base := PipelineSpec{Name: "p", Scorer: "s", Policy: "policy2"}.withDefaults()
	if err := base.swappableEqual(base); err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	swapped := base
	swapped.Policy = "policy1"
	swapped.Scorer = "t"
	if err := base.swappableEqual(swapped); err != nil {
		t.Fatalf("swappable-only diff rejected: %v", err)
	}
	for _, mut := range []func(*PipelineSpec){
		func(p *PipelineSpec) { p.TTL = Duration(time.Minute) },
		func(p *PipelineSpec) { p.MaxDifficulty = 9 },
		func(p *PipelineSpec) { p.ReplayCache = 7 },
		func(p *PipelineSpec) { p.AuthCacheSlots = 4096 },
		func(p *PipelineSpec) { p.ClockSkew = Duration(time.Minute) },
	} {
		q := base
		mut(&q)
		if err := base.swappableEqual(q); err == nil {
			t.Fatalf("non-swappable diff accepted: %+v", q)
		}
	}
}
