package puzzle

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ctxCheckInterval is how many hash attempts the solver performs between
// context cancellation checks; it trades cancellation latency (microseconds)
// against per-hash overhead.
const ctxCheckInterval = 4096

// balloonCheckInterval is the same for memory-hard attempts, which cost
// thousands of hashes each, so the check must come far more often to keep
// cancellation latency comparable.
const balloonCheckInterval = 16

// SolveStats describes the work one solve performed. The attack experiments
// use it to account attacker-side cost.
type SolveStats struct {
	// Attempts is the number of nonce evaluations performed, including
	// the successful one. For memory-hard backends each attempt costs
	// Backend.AttemptCost hash evaluations, not one.
	Attempts uint64

	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// Solver performs the client-side nonce search. It corresponds to the
// paper's "puzzle solver" module: the received challenge data is treated as
// an immutable prefix, a 32-bit string is appended, and the client mutates
// it on each hash evaluation until the digest has the required zero prefix.
//
// One Solver handles every wire version: it dispatches on the challenge's
// version and backend ID, so a client facing a mixed deployment (hashcash
// on one route, memory-hard on another) needs exactly one solver. With
// WithSolverWorkers the nonce space is searched by multiple goroutines in
// disjoint strides; any discovered nonce verifies identically.
//
// Solver is safe for concurrent use; each Solve call owns its own state.
type Solver struct {
	extended bool
	limit    uint64
	workers  int
	now      func() time.Time
}

// SolverOption customizes a Solver.
type SolverOption func(*Solver)

// WithExtendedNonce lets the search continue into a 64-bit nonce space
// after the 32-bit space (the paper's default) is exhausted. It exists for
// difficulties above ~26 where 32-bit exhaustion stops being negligible.
func WithExtendedNonce() SolverOption {
	return func(s *Solver) { s.extended = true }
}

// WithSolverNow injects the solver's clock for deterministic tests.
func WithSolverNow(now func() time.Time) SolverOption {
	return func(s *Solver) { s.now = now }
}

// WithNonceLimit caps the number of nonce attempts before the solver gives
// up with ErrNonceExhausted. Zero (the default) means the full nonce space.
// Rational attackers use this to bound the work they are willing to spend
// on one request (see the attack strategies in internal/attack). With
// multiple workers the limit bounds total attempts across all of them.
func WithNonceLimit(limit uint64) SolverOption {
	return func(s *Solver) { s.limit = limit }
}

// WithSolverWorkers sets the number of goroutines searching the nonce
// space (default 1, a sequential scan). Workers scan disjoint strides, so
// the speedup is near-linear where hashing dominates; values below 1 are
// treated as 1.
func WithSolverWorkers(n int) SolverOption {
	return func(s *Solver) { s.workers = n }
}

// NewSolver returns a Solver with the given options applied.
func NewSolver(opts ...SolverOption) *Solver {
	s := &Solver{now: time.Now, workers: 1}
	for _, opt := range opts {
		opt(s)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	return s
}

// Solve searches for a nonce meeting the challenge difficulty, dispatching
// on the challenge's wire version and backend. It returns ErrNonceExhausted
// if the nonce space (or the configured limit) runs out, or ctx.Err() if
// the context is cancelled mid-search. The returned stats are valid in all
// cases and report the work performed up to the return.
func (s *Solver) Solve(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	balloon := ch.Version >= Version2 && ch.Backend == BackendBalloon
	if s.workers > 1 {
		return s.solveStrided(ctx, ch, balloon)
	}
	if balloon {
		return s.solveBalloon(ctx, ch)
	}
	return s.solveHashcash(ctx, ch)
}

// solveHashcash is the sequential CPU-bound search — the paper's solver,
// byte for byte.
func (s *Solver) solveHashcash(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	start := s.now()
	stats := SolveStats{}
	prefix := ch.canonical()

	// 32-bit phase: 4-byte big-endian nonce, exactly the paper's format.
	buf := make([]byte, len(prefix)+4)
	copy(buf, prefix)
	for nonce := uint64(0); nonce <= math.MaxUint32; nonce++ {
		if stats.Attempts%ctxCheckInterval == 0 && ctx.Err() != nil {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ctx.Err()
		}
		if s.limit > 0 && stats.Attempts >= s.limit {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ErrNonceExhausted
		}
		binary.BigEndian.PutUint32(buf[len(prefix):], uint32(nonce))
		digest := sha256.Sum256(buf)
		stats.Attempts++
		if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
			stats.Elapsed = s.now().Sub(start)
			return Solution{Challenge: ch, Nonce: nonce}, stats, nil
		}
	}
	if !s.extended {
		stats.Elapsed = s.now().Sub(start)
		return Solution{}, stats, ErrNonceExhausted
	}

	// Extended phase: 8-byte nonces strictly above MaxUint32.
	buf = make([]byte, len(prefix)+8)
	copy(buf, prefix)
	for nonce := uint64(math.MaxUint32) + 1; nonce != 0; nonce++ {
		if stats.Attempts%ctxCheckInterval == 0 && ctx.Err() != nil {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ctx.Err()
		}
		if s.limit > 0 && stats.Attempts >= s.limit {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ErrNonceExhausted
		}
		binary.BigEndian.PutUint64(buf[len(prefix):], nonce)
		digest := sha256.Sum256(buf)
		stats.Attempts++
		if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
			stats.Elapsed = s.now().Sub(start)
			return Solution{Challenge: ch, Nonce: nonce}, stats, nil
		}
	}
	stats.Elapsed = s.now().Sub(start)
	return Solution{}, stats, ErrNonceExhausted
}

// solveBalloon is the sequential memory-hard search: the same nonce walk,
// with the balloon function in place of the single SHA-256.
func (s *Solver) solveBalloon(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	start := s.now()
	stats := SolveStats{}
	prefix := ch.canonical()
	buf := make([]byte, len(prefix)+4)
	copy(buf, prefix)
	for nonce := uint64(0); nonce <= math.MaxUint32; nonce++ {
		if stats.Attempts%balloonCheckInterval == 0 && ctx.Err() != nil {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ctx.Err()
		}
		if s.limit > 0 && stats.Attempts >= s.limit {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ErrNonceExhausted
		}
		binary.BigEndian.PutUint32(buf[len(prefix):], uint32(nonce))
		digest := balloonDigest(buf, ch.Space, ch.Rounds)
		stats.Attempts++
		if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
			stats.Elapsed = s.now().Sub(start)
			return Solution{Challenge: ch, Nonce: nonce}, stats, nil
		}
	}
	stats.Elapsed = s.now().Sub(start)
	return Solution{}, stats, ErrNonceExhausted
}

// solveStrided searches the 32-bit nonce space with s.workers goroutines,
// worker w trying nonces w, w+n, w+2n, … — any discovered nonce verifies
// identically to a sequential find; only the wall-clock time changes.
// Stats aggregate attempts across workers, so they measure total energy,
// not wall time.
func (s *Solver) solveStrided(ctx context.Context, ch Challenge, balloon bool) (Solution, SolveStats, error) {
	start := s.now()
	prefix := ch.canonical()
	var (
		stop     atomic.Bool
		attempts atomic.Uint64
		winner   atomic.Int64
	)
	winner.Store(-1)

	checkEvery := uint64(ctxCheckInterval)
	if balloon {
		checkEvery = balloonCheckInterval
	}
	perWorkerBudget := uint64(math.MaxUint32)
	if s.limit > 0 {
		perWorkerBudget = s.limit / uint64(s.workers)
		if perWorkerBudget == 0 {
			perWorkerBudget = 1
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(first uint64) {
			defer wg.Done()
			buf := make([]byte, len(prefix)+4)
			copy(buf, prefix)
			var done uint64
			for nonce := first; nonce <= math.MaxUint32; nonce += uint64(s.workers) {
				if done%checkEvery == 0 {
					if stop.Load() || ctx.Err() != nil {
						attempts.Add(done)
						return
					}
				}
				if done >= perWorkerBudget {
					attempts.Add(done)
					return
				}
				binary.BigEndian.PutUint32(buf[len(prefix):], uint32(nonce))
				var digest [sha256.Size]byte
				if balloon {
					digest = balloonDigest(buf, ch.Space, ch.Rounds)
				} else {
					digest = sha256.Sum256(buf)
				}
				done++
				if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
					// First writer wins; others keep their partial counts.
					if winner.CompareAndSwap(-1, int64(nonce)) {
						stop.Store(true)
					}
					attempts.Add(done)
					return
				}
			}
			attempts.Add(done)
		}(uint64(w))
	}
	wg.Wait()

	stats := SolveStats{Attempts: attempts.Load(), Elapsed: s.now().Sub(start)}
	if err := ctx.Err(); err != nil && winner.Load() < 0 {
		return Solution{}, stats, err
	}
	if n := winner.Load(); n >= 0 {
		return Solution{Challenge: ch, Nonce: uint64(n)}, stats, nil
	}
	return Solution{}, stats, ErrNonceExhausted
}
