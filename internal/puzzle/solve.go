package puzzle

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"time"
)

// ctxCheckInterval is how many hash attempts the solver performs between
// context cancellation checks; it trades cancellation latency (microseconds)
// against per-hash overhead.
const ctxCheckInterval = 4096

// SolveStats describes the work one solve performed. The attack experiments
// use it to account attacker-side cost.
type SolveStats struct {
	// Attempts is the number of hash evaluations performed, including the
	// successful one.
	Attempts uint64

	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// Solver performs the client-side nonce search. It corresponds to the
// paper's "puzzle solver" module: the received challenge data is treated as
// an immutable prefix, a 32-bit string is appended, and the client mutates
// it on each hash evaluation until the digest has the required zero prefix.
//
// Solver is safe for concurrent use; each Solve call owns its own state.
type Solver struct {
	extended bool
	limit    uint64
	now      func() time.Time
}

// SolverOption customizes a Solver.
type SolverOption func(*Solver)

// WithExtendedNonce lets the search continue into a 64-bit nonce space
// after the 32-bit space (the paper's default) is exhausted. It exists for
// difficulties above ~26 where 32-bit exhaustion stops being negligible.
func WithExtendedNonce() SolverOption {
	return func(s *Solver) { s.extended = true }
}

// WithSolverNow injects the solver's clock for deterministic tests.
func WithSolverNow(now func() time.Time) SolverOption {
	return func(s *Solver) { s.now = now }
}

// WithNonceLimit caps the number of hash attempts before the solver gives
// up with ErrNonceExhausted. Zero (the default) means the full nonce space.
// Rational attackers use this to bound the work they are willing to spend
// on one request (see the attack strategies in internal/attack).
func WithNonceLimit(limit uint64) SolverOption {
	return func(s *Solver) { s.limit = limit }
}

// NewSolver returns a Solver with the given options applied.
func NewSolver(opts ...SolverOption) *Solver {
	s := &Solver{now: time.Now}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Solve searches for a nonce meeting the challenge difficulty. It returns
// ErrNonceExhausted if the nonce space runs out, or ctx.Err() if the
// context is cancelled mid-search. The returned stats are valid in all
// cases and report the work performed up to the return.
func (s *Solver) Solve(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	start := s.now()
	stats := SolveStats{}
	prefix := ch.canonical()

	// 32-bit phase: 4-byte big-endian nonce, exactly the paper's format.
	buf := make([]byte, len(prefix)+4)
	copy(buf, prefix)
	for nonce := uint64(0); nonce <= math.MaxUint32; nonce++ {
		if stats.Attempts%ctxCheckInterval == 0 && ctx.Err() != nil {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ctx.Err()
		}
		if s.limit > 0 && stats.Attempts >= s.limit {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ErrNonceExhausted
		}
		binary.BigEndian.PutUint32(buf[len(prefix):], uint32(nonce))
		digest := sha256.Sum256(buf)
		stats.Attempts++
		if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
			stats.Elapsed = s.now().Sub(start)
			return Solution{Challenge: ch, Nonce: nonce}, stats, nil
		}
	}
	if !s.extended {
		stats.Elapsed = s.now().Sub(start)
		return Solution{}, stats, ErrNonceExhausted
	}

	// Extended phase: 8-byte nonces strictly above MaxUint32.
	buf = make([]byte, len(prefix)+8)
	copy(buf, prefix)
	for nonce := uint64(math.MaxUint32) + 1; nonce != 0; nonce++ {
		if stats.Attempts%ctxCheckInterval == 0 && ctx.Err() != nil {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ctx.Err()
		}
		if s.limit > 0 && stats.Attempts >= s.limit {
			stats.Elapsed = s.now().Sub(start)
			return Solution{}, stats, ErrNonceExhausted
		}
		binary.BigEndian.PutUint64(buf[len(prefix):], nonce)
		digest := sha256.Sum256(buf)
		stats.Attempts++
		if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
			stats.Elapsed = s.now().Sub(start)
			return Solution{Challenge: ch, Nonce: nonce}, stats, nil
		}
	}
	stats.Elapsed = s.now().Sub(start)
	return Solution{}, stats, ErrNonceExhausted
}
