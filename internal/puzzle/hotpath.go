package puzzle

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
	"sync"
)

// macScratch bundles the per-call state the issue/verify hot paths reuse
// through a pool: a keyed HMAC instance (Reset is cheap — crypto/hmac
// snapshots the keyed pads after first use), an append buffer for the
// canonical encoding, a tag output buffer, and seed scratch for issuance.
// Pooling this state removes the hmac.New + buffer allocations that
// otherwise dominate B/op on Issue and Verify.
type macScratch struct {
	mac   hash.Hash
	buf   []byte
	sum   []byte
	seed  [SeedSize]byte
	seeds []byte // batch issuance entropy, read one syscall per chunk
}

// macPool pools macScratch values keyed to one HMAC key.
type macPool struct {
	pool sync.Pool
}

// newMACPool builds a pool whose scratches are keyed with key. The key is
// copied once; scratches are created lazily per P as needed.
func newMACPool(key []byte) *macPool {
	key = append([]byte(nil), key...)
	p := &macPool{}
	p.pool.New = func() any {
		return &macScratch{
			mac: hmac.New(sha256.New, key),
			buf: make([]byte, 0, binaryFixedSizeV2+64),
			sum: make([]byte, 0, sha256.Size),
		}
	}
	return p
}

func (p *macPool) get() *macScratch  { return p.pool.Get().(*macScratch) }
func (p *macPool) put(s *macScratch) { p.pool.Put(s) }

// tagOf computes the HMAC-SHA256 tag over ch's canonical form without
// allocating, leaving the canonical bytes in s.buf for further use (the
// verifier appends the nonce to them to check the solution digest).
func (s *macScratch) tagOf(ch *Challenge) [TagSize]byte {
	s.buf = ch.appendCanonical(s.buf[:0])
	return s.sumCanonical()
}

// sumCanonical computes the HMAC-SHA256 tag over the canonical bytes
// already sitting in s.buf (callers that built the canonical form for an
// AuthCache probe reuse it as the MAC input on a miss).
func (s *macScratch) sumCanonical() [TagSize]byte {
	s.mac.Reset()
	s.mac.Write(s.buf)
	s.sum = s.mac.Sum(s.sum[:0])
	var out [TagSize]byte
	copy(out[:], s.sum)
	return out
}
