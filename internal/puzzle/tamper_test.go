package puzzle

import (
	"context"
	"math/rand/v2"
	"testing"
)

// TestAnyBitFlipIsDetected is the package's central security property:
// flipping any single bit of an encoded challenge must make it either
// undecodable or unverifiable. Every bit of the wire format is covered by
// structure checks or by the HMAC tag, so no flip may survive.
func TestAnyBitFlipIsDetected(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	solver := NewSolver()

	ch, err := iss.Issue("192.0.2.33", 4)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := solver.Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, "192.0.2.33"); err != nil {
		t.Fatalf("pristine solution rejected: %v", err)
	}
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(2022, 3))
	// Exhaustively flipping every bit would be len(raw)*8 verifications;
	// flip every bit of a random sample of 200 positions plus all tag and
	// difficulty bytes for certainty where it matters most.
	positions := map[int]bool{}
	for i := 0; i < 200; i++ {
		positions[rng.IntN(len(raw))] = true
	}
	for i := len(raw) - TagSize; i < len(raw); i++ {
		positions[i] = true // every tag byte
	}
	for pos := range positions {
		for bit := 0; bit < 8; bit++ {
			mutated := append([]byte(nil), raw...)
			mutated[pos] ^= 1 << uint(bit)

			var decoded Challenge
			if err := decoded.UnmarshalBinary(mutated); err != nil {
				continue // structural detection
			}
			// Structure survived: verification must fail. Reuse the honest
			// nonce — an attacker replaying a tampered challenge keeps the
			// old solution.
			forged := Solution{Challenge: decoded, Nonce: sol.Nonce}
			if err := ver.Verify(forged, "192.0.2.33"); err == nil {
				t.Fatalf("bit flip at byte %d bit %d survived verification", pos, bit)
			}
		}
	}
}

// TestForgedChallengeCannotLowerDifficulty checks the attack the HMAC
// exists to stop: a client rewriting its challenge to an easier difficulty
// before solving.
func TestForgedChallengeCannotLowerDifficulty(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ch, err := iss.Issue("client", 20) // too hard to bother solving
	if err != nil {
		t.Fatal(err)
	}
	forged := ch
	forged.Difficulty = 1
	sol, _, err := NewSolver().Solve(context.Background(), forged)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, "client"); err == nil {
		t.Fatal("difficulty-lowered forgery accepted")
	}
}

// TestStolenChallengeCannotBeRedeemedByOthers checks the binding: a
// challenge solved by a third party is useless to anyone but the bound
// client.
func TestStolenChallengeCannotBeRedeemedByOthers(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ch, err := iss.Issue("victim", 3)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, thief := range []string{"attacker", "victim2", "VICTIM"} {
		if err := ver.Verify(sol, thief); err == nil {
			t.Fatalf("binding %q redeemed victim's solution", thief)
		}
	}
}
