package puzzle

import (
	"errors"
	"testing"
	"time"
)

func newTestVerifier(t *testing.T, opts ...VerifierOption) *Verifier {
	t.Helper()
	v, err := NewVerifier(testKey, opts...)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	return v
}

func TestNewVerifierRejectsShortKey(t *testing.T) {
	if _, err := NewVerifier([]byte("tiny")); !errors.Is(err, ErrKeyTooShort) {
		t.Fatalf("err = %v, want ErrKeyTooShort", err)
	}
}

func TestNewVerifierRejectsNegativeSkew(t *testing.T) {
	if _, err := NewVerifier(testKey, WithClockSkew(-time.Second)); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestVerifyAcceptsValidSolution(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ch, err := iss.Issue("192.0.2.1", 4)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	if err := ver.Verify(sol, "192.0.2.1"); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Empty binding skips the binding check.
	if err := ver.Verify(sol, ""); err != nil {
		t.Fatalf("Verify with empty binding: %v", err)
	}
}

func TestVerifyRejectsTamperedFields(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ch, err := iss.Issue("192.0.2.1", 4)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)

	tests := []struct {
		name   string
		mutate func(*Solution)
		want   error
	}{
		{"difficulty_lowered", func(s *Solution) { s.Challenge.Difficulty = 1 }, ErrBadTag},
		{"ttl_extended", func(s *Solution) { s.Challenge.TTL *= 10 }, ErrBadTag},
		{"binding_swapped", func(s *Solution) { s.Challenge.Binding = "6.6.6.6" }, ErrBadTag},
		{"seed_flipped", func(s *Solution) { s.Challenge.Seed[0] ^= 1 }, ErrBadTag},
		{"issued_shifted", func(s *Solution) { s.Challenge.IssuedAt = s.Challenge.IssuedAt.Add(time.Second) }, ErrBadTag},
		{"tag_flipped", func(s *Solution) { s.Challenge.Tag[0] ^= 1 }, ErrBadTag},
		{"bad_version", func(s *Solution) { s.Challenge.Version = 9 }, ErrBadVersion},
		{"difficulty_out_of_range", func(s *Solution) { s.Challenge.Difficulty = 0 }, ErrInvalidDifficulty},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mutated := sol
			tt.mutate(&mutated)
			err := ver.Verify(mutated, "192.0.2.1")
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
			if !errors.Is(err, ErrVerify) {
				t.Fatalf("err = %v does not wrap ErrVerify", err)
			}
		})
	}
}

func TestVerifyRejectsWrongPresenter(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ch, err := iss.Issue("192.0.2.1", 2)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	if err := ver.Verify(sol, "203.0.113.5"); !errors.Is(err, ErrBindingMismatch) {
		t.Fatalf("err = %v, want ErrBindingMismatch", err)
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ch, err := iss.Issue("c", 12)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	bad := sol
	bad.Nonce++ // almost surely wrong at d=12
	if ch.Meets(bad.Nonce) {
		t.Skip("adjacent nonce happens to solve; astronomically rare")
	}
	if err := ver.Verify(bad, "c"); !errors.Is(err, ErrWrongSolution) {
		t.Fatalf("err = %v, want ErrWrongSolution", err)
	}
}

func TestVerifyExpiry(t *testing.T) {
	issuedAt := time.Date(2022, 3, 21, 12, 0, 0, 0, time.UTC)
	iss := newTestIssuer(t, WithIssuerNow(fixedNow(issuedAt)), WithTTL(time.Minute))
	ch, err := iss.Issue("c", 2)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)

	tests := []struct {
		name string
		at   time.Time
		want error
	}{
		{"fresh", issuedAt.Add(time.Second), nil},
		{"at_ttl_edge_within_skew", issuedAt.Add(time.Minute + time.Second), nil},
		{"expired", issuedAt.Add(time.Minute + 3*time.Second), ErrExpired},
		{"future_challenge", issuedAt.Add(-5 * time.Second), ErrNotYetValid},
		{"future_within_skew", issuedAt.Add(-time.Second), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ver := newTestVerifier(t, WithVerifierNow(fixedNow(tt.at)), WithClockSkew(2*time.Second))
			err := ver.Verify(sol, "c")
			if tt.want == nil && err != nil {
				t.Fatalf("Verify = %v, want nil", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("Verify = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestVerifyReplay(t *testing.T) {
	iss := newTestIssuer(t)
	cache := NewReplayCache(128, nil)
	ver := newTestVerifier(t, WithReplayCache(cache))
	ch, err := iss.Issue("c", 2)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	if err := ver.Verify(sol, "c"); err != nil {
		t.Fatalf("first redemption: %v", err)
	}
	if err := ver.Verify(sol, "c"); !errors.Is(err, ErrReplayed) {
		t.Fatalf("second redemption = %v, want ErrReplayed", err)
	}
}

func TestVerifyFailedAttemptDoesNotBurnSeed(t *testing.T) {
	iss := newTestIssuer(t)
	cache := NewReplayCache(128, nil)
	ver := newTestVerifier(t, WithReplayCache(cache))
	ch, err := iss.Issue("c", 10)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	bad := sol
	bad.Nonce = sol.Nonce + 1
	if ch.Meets(bad.Nonce) {
		t.Skip("adjacent nonce happens to solve")
	}
	if err := ver.Verify(bad, "c"); err == nil {
		t.Fatal("bad nonce accepted")
	}
	if err := ver.Verify(sol, "c"); err != nil {
		t.Fatalf("correct solution rejected after failed attempt: %v", err)
	}
}

func TestVerifyDifferentKeyRejects(t *testing.T) {
	iss := newTestIssuer(t)
	otherKey := []byte("ffffffffffffffffffffffffffffffff")
	ver, err := NewVerifier(otherKey)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := iss.Issue("c", 1)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	if err := ver.Verify(sol, "c"); !errors.Is(err, ErrBadTag) {
		t.Fatalf("err = %v, want ErrBadTag", err)
	}
}
