package puzzle

import (
	"context"
	"fmt"
	"runtime"
)

// ParallelSolver searches the nonce space with multiple goroutines.
//
// Deprecated: Solver does everything ParallelSolver did — use
// NewSolver(WithSolverWorkers(n), WithNonceLimit(m)) instead, which also
// dispatches on the challenge's backend. ParallelSolver remains as a thin
// wrapper so existing callers keep compiling.
type ParallelSolver struct {
	inner *Solver
}

// parallelConfig holds option state until NewParallelSolver validates it.
type parallelConfig struct {
	workers int
	limit   uint64
}

// ParallelOption customizes a ParallelSolver.
//
// Deprecated: use SolverOption with NewSolver.
type ParallelOption func(*parallelConfig)

// WithWorkers sets the goroutine count (default runtime.NumCPU()).
//
// Deprecated: use WithSolverWorkers with NewSolver.
func WithWorkers(n int) ParallelOption {
	return func(c *parallelConfig) { c.workers = n }
}

// WithParallelNonceLimit caps total attempts across all workers before the
// search gives up with ErrNonceExhausted (zero = full 32-bit space).
//
// Deprecated: use WithNonceLimit with NewSolver.
func WithParallelNonceLimit(limit uint64) ParallelOption {
	return func(c *parallelConfig) { c.limit = limit }
}

// NewParallelSolver returns a solver with the options applied.
//
// Deprecated: use NewSolver(WithSolverWorkers(runtime.NumCPU())).
func NewParallelSolver(opts ...ParallelOption) (*ParallelSolver, error) {
	cfg := parallelConfig{workers: runtime.NumCPU()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		return nil, fmt.Errorf("puzzle: parallel solver needs at least one worker, got %d", cfg.workers)
	}
	return &ParallelSolver{
		inner: NewSolver(WithSolverWorkers(cfg.workers), WithNonceLimit(cfg.limit)),
	}, nil
}

// Solve searches for a solving nonce using all workers. Stats aggregate
// attempts across workers, so they measure total energy, not wall time.
func (s *ParallelSolver) Solve(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	return s.inner.Solve(ctx, ch)
}
