package puzzle

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelSolver searches the nonce space with multiple goroutines, each
// scanning a disjoint stride (worker w tries nonces w, w+n, w+2n, …).
// Any discovered nonce verifies identically to a sequential find; only the
// wall-clock time changes. Use it for difficulties where a single core's
// latency is unacceptable — the speedup is near-linear in workers because
// hashing dominates.
//
// ParallelSolver is safe for concurrent use; each Solve owns its state.
type ParallelSolver struct {
	workers int
	limit   uint64
}

// ParallelOption customizes a ParallelSolver.
type ParallelOption func(*ParallelSolver)

// WithWorkers sets the goroutine count (default runtime.NumCPU()).
func WithWorkers(n int) ParallelOption {
	return func(s *ParallelSolver) { s.workers = n }
}

// WithParallelNonceLimit caps total attempts across all workers before the
// search gives up with ErrNonceExhausted (zero = full 32-bit space).
func WithParallelNonceLimit(limit uint64) ParallelOption {
	return func(s *ParallelSolver) { s.limit = limit }
}

// NewParallelSolver returns a solver with the options applied.
func NewParallelSolver(opts ...ParallelOption) (*ParallelSolver, error) {
	s := &ParallelSolver{workers: runtime.NumCPU()}
	for _, opt := range opts {
		opt(s)
	}
	if s.workers < 1 {
		return nil, fmt.Errorf("puzzle: parallel solver needs at least one worker, got %d", s.workers)
	}
	return s, nil
}

// Solve searches for a solving nonce using all workers. Stats aggregate
// attempts across workers, so they measure total energy, not wall time.
func (s *ParallelSolver) Solve(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	prefix := ch.canonical()
	var (
		stop     atomic.Bool
		attempts atomic.Uint64
		winner   atomic.Int64
	)
	winner.Store(-1)

	perWorkerBudget := uint64(math.MaxUint32)
	if s.limit > 0 {
		perWorkerBudget = s.limit / uint64(s.workers)
		if perWorkerBudget == 0 {
			perWorkerBudget = 1
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(start uint64) {
			defer wg.Done()
			buf := make([]byte, len(prefix)+4)
			copy(buf, prefix)
			var done uint64
			for nonce := start; nonce <= math.MaxUint32; nonce += uint64(s.workers) {
				if done%ctxCheckInterval == 0 {
					if stop.Load() || ctx.Err() != nil {
						attempts.Add(done)
						return
					}
				}
				if done >= perWorkerBudget {
					attempts.Add(done)
					return
				}
				binary.BigEndian.PutUint32(buf[len(prefix):], uint32(nonce))
				digest := sha256.Sum256(buf)
				done++
				if CountLeadingZeroBits(digest[:]) >= ch.Difficulty {
					// First writer wins; others keep their partial counts.
					if winner.CompareAndSwap(-1, int64(nonce)) {
						stop.Store(true)
					}
					attempts.Add(done)
					return
				}
			}
			attempts.Add(done)
		}(uint64(w))
	}
	wg.Wait()

	stats := SolveStats{Attempts: attempts.Load()}
	if err := ctx.Err(); err != nil && winner.Load() < 0 {
		return Solution{}, stats, err
	}
	if n := winner.Load(); n >= 0 {
		return Solution{Challenge: ch, Nonce: uint64(n)}, stats, nil
	}
	return Solution{}, stats, ErrNonceExhausted
}
