package puzzle

import (
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
)

// testBalloon returns a small, fast balloon backend for tests.
func testBalloon(t *testing.T) Backend {
	t.Helper()
	b, err := NewBalloon(8, 1)
	if err != nil {
		t.Fatalf("NewBalloon: %v", err)
	}
	return b
}

func TestBackendConstructors(t *testing.T) {
	if got := Hashcash().ID(); got != BackendHashcash {
		t.Fatalf("Hashcash().ID() = %v, want BackendHashcash", got)
	}
	if got := Hashcash().WireVersion(); got != Version1 {
		t.Fatalf("Hashcash().WireVersion() = %d, want Version1", got)
	}
	b := testBalloon(t)
	if got := b.ID(); got != BackendBalloon {
		t.Fatalf("balloon ID() = %v, want BackendBalloon", got)
	}
	if got := b.WireVersion(); got != Version2 {
		t.Fatalf("balloon WireVersion() = %d, want Version2", got)
	}
	if b.AttemptCost() <= Hashcash().AttemptCost() {
		t.Fatalf("balloon AttemptCost() = %v, want > hashcash's %v",
			b.AttemptCost(), Hashcash().AttemptCost())
	}
	if b.MemoryPerAttempt() <= Hashcash().MemoryPerAttempt() {
		t.Fatalf("balloon MemoryPerAttempt() = %d, want > hashcash's %d",
			b.MemoryPerAttempt(), Hashcash().MemoryPerAttempt())
	}
}

func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantID  BackendID
		wantErr bool
	}{
		{"", BackendHashcash, false},
		{"hashcash", BackendHashcash, false},
		{"hashcash(bits=22)", BackendHashcash, false},
		{"balloon", BackendBalloon, false},
		{"balloon(space=256, time=2)", BackendBalloon, false},
		{"balloon(space=8,time=1)", BackendBalloon, false},
		{"scrypt", 0, true},
		{"hashcash(bits=0)", 0, true},
		{"balloon(space=1)", 0, true},
		{"balloon(bogus=3)", 0, true},
		{"balloon(space=", 0, true},
	}
	for _, tc := range cases {
		b, err := ParseBackendSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseBackendSpec(%q): no error, want one", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBackendSpec(%q): %v", tc.spec, err)
			continue
		}
		if b.ID() != tc.wantID {
			t.Errorf("ParseBackendSpec(%q).ID() = %v, want %v", tc.spec, b.ID(), tc.wantID)
		}
		// Spec() is canonical: re-parsing it yields the same backend.
		again, err := ParseBackendSpec(b.Spec())
		if err != nil {
			t.Errorf("re-parse %q: %v", b.Spec(), err)
		} else if again.Spec() != b.Spec() {
			t.Errorf("Spec() not canonical: %q re-parses to %q", b.Spec(), again.Spec())
		}
	}
	if _, err := ParseBackendSpec("scrypt"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("unknown backend err = %v, want ErrUnknownBackend", err)
	}
}

// TestCrossBackendVerificationRejected pins the downgrade-proofing
// contract: a solution produced under one backend never verifies under a
// verifier pinned to another, regardless of which direction the mismatch
// runs and regardless of whether the nonce genuinely meets the other
// backend's difficulty predicate.
func TestCrossBackendVerificationRejected(t *testing.T) {
	balloon := testBalloon(t)
	solver := NewSolver()
	cases := []struct {
		name    string
		issue   []IssuerOption
		verify  []VerifierOption
		wantGap bool // verifier backend differs from issuer backend
	}{
		{"hashcash-to-hashcash", nil, nil, false},
		{"balloon-to-balloon",
			[]IssuerOption{WithIssuerBackend(balloon)},
			[]VerifierOption{WithVerifierBackend(balloon)}, false},
		{"v1-hashcash-to-balloon-verifier", nil,
			[]VerifierOption{WithVerifierBackend(balloon)}, true},
		{"v2-balloon-to-hashcash-verifier",
			[]IssuerOption{WithIssuerBackend(balloon)}, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			iss := newTestIssuer(t, tc.issue...)
			ver := newTestVerifier(t, tc.verify...)
			ch, err := iss.Issue("192.0.2.7", 2)
			if err != nil {
				t.Fatal(err)
			}
			sol, _, err := solver.Solve(context.Background(), ch)
			if err != nil {
				t.Fatal(err)
			}
			err = ver.Verify(sol, "192.0.2.7")
			if !tc.wantGap {
				if err != nil {
					t.Fatalf("same-backend verify failed: %v", err)
				}
				return
			}
			if !errors.Is(err, ErrVerify) || !errors.Is(err, ErrBadVersion) {
				t.Fatalf("cross-backend verify err = %v, want ErrVerify+ErrBadVersion", err)
			}
		})
	}
}

// TestDowngradeForgeryRejected re-encodes a genuine v2 balloon challenge
// as a v1 hashcash token — the active downgrade an attacker would mount
// to swap memory-hard work for cheap SHA-256 — and checks both verifiers
// refuse it: the balloon verifier by the version gate, the hashcash
// verifier because the v1 and v2 HMAC domains are disjoint.
func TestDowngradeForgeryRejected(t *testing.T) {
	balloon := testBalloon(t)
	iss := newTestIssuer(t, WithIssuerBackend(balloon))
	ch, err := iss.Issue("192.0.2.9", 2)
	if err != nil {
		t.Fatal(err)
	}
	down := ch
	down.Version = Version1
	down.Backend, down.Space, down.Rounds = 0, 0, 0
	sol, _, err := NewSolver().Solve(context.Background(), down)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ver  *Verifier
	}{
		{"balloon-verifier", newTestVerifier(t, WithVerifierBackend(balloon))},
		{"hashcash-verifier", newTestVerifier(t)},
	} {
		if err := tc.ver.Verify(sol, "192.0.2.9"); !errors.Is(err, ErrVerify) {
			t.Fatalf("%s accepted downgraded token: %v", tc.name, err)
		}
	}
}

// TestBackendTokenDecodeRejectsGarbage covers the v2 wire format's
// structural checks: truncation at every interesting boundary, a zeroed
// backend ID, and an unknown backend ID (which decodes but must then be
// refused by every verifier).
func TestBackendTokenDecodeRejectsGarbage(t *testing.T) {
	balloon := testBalloon(t)
	iss := newTestIssuer(t, WithIssuerBackend(balloon))
	ch, err := iss.Issue("192.0.2.11", 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(raw); cut++ {
		var decoded Challenge
		if err := decoded.UnmarshalBinary(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}

	backendOff := len("AIPoW/2\x00") + 1
	zeroed := append([]byte(nil), raw...)
	zeroed[backendOff] = 0
	var decoded Challenge
	if err := decoded.UnmarshalBinary(zeroed); err == nil ||
		!strings.Contains(err.Error(), "backend") {
		t.Fatalf("zero backend ID decode err = %v, want backend error", err)
	}

	unknown := append([]byte(nil), raw...)
	unknown[backendOff] = 0x7f
	var uch Challenge
	if err := uch.UnmarshalBinary(unknown); err != nil {
		// Structural rejection of unknown IDs is also acceptable.
		return
	}
	sol := Solution{Challenge: uch, Nonce: 0}
	for _, ver := range []*Verifier{
		newTestVerifier(t),
		newTestVerifier(t, WithVerifierBackend(balloon)),
	} {
		if err := ver.Verify(sol, "192.0.2.11"); !errors.Is(err, ErrVerify) {
			t.Fatalf("unknown backend ID verified: %v", err)
		}
	}
}

// TestChallengeTextRoundTripPerBackend pins that MarshalText is lossless
// for every backend's wire format, including the v2 cost parameters.
func TestChallengeTextRoundTripPerBackend(t *testing.T) {
	balloonSmall := testBalloon(t)
	balloonDefault, err := NewBalloon(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []IssuerOption
	}{
		{"hashcash", nil},
		{"balloon-small", []IssuerOption{WithIssuerBackend(balloonSmall)}},
		{"balloon-default", []IssuerOption{WithIssuerBackend(balloonDefault)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			iss := newTestIssuer(t, tc.opts...)
			ch, err := iss.Issue("198.51.100.4", 3)
			if err != nil {
				t.Fatal(err)
			}
			text, err := ch.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			var back Challenge
			if err := back.UnmarshalText(text); err != nil {
				t.Fatal(err)
			}
			assertChallengeEqual(t, ch, back)
			sol := Solution{Challenge: ch, Nonce: 0x1234abcd}
			st, err := sol.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			var sback Solution
			if err := sback.UnmarshalText(st); err != nil {
				t.Fatal(err)
			}
			assertChallengeEqual(t, sol.Challenge, sback.Challenge)
			if sback.Nonce != sol.Nonce {
				t.Fatalf("solution nonce round trip: got %#x, want %#x", sback.Nonce, sol.Nonce)
			}
		})
	}
}

// TestAnyBitFlipIsDetectedBalloon extends the central tamper property to
// the v2 balloon wire format: flipping any single bit — including the
// backend ID and the space/time cost parameters, which ride under the
// HMAC — must make the token undecodable or unverifiable.
func TestAnyBitFlipIsDetectedBalloon(t *testing.T) {
	balloon := testBalloon(t)
	iss := newTestIssuer(t, WithIssuerBackend(balloon))
	ver := newTestVerifier(t, WithVerifierBackend(balloon))
	solver := NewSolver()

	ch, err := iss.Issue("192.0.2.33", 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := solver.Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, "192.0.2.33"); err != nil {
		t.Fatalf("pristine solution rejected: %v", err)
	}
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(2022, 3))
	// A random sample of positions, plus every byte of the v2 header
	// (magic, version, backend ID, space, rounds) and the full tag —
	// the fields this wire format added are exactly the ones a
	// downgrade forgery would rewrite.
	positions := map[int]bool{}
	for i := 0; i < 120; i++ {
		positions[rng.IntN(len(raw))] = true
	}
	for i := 0; i < binaryFixedSizeV2-SeedSize-8-8-2-2; i++ {
		positions[i] = true
	}
	for i := len(raw) - TagSize; i < len(raw); i++ {
		positions[i] = true
	}
	for pos := range positions {
		for bit := 0; bit < 8; bit++ {
			mutated := append([]byte(nil), raw...)
			mutated[pos] ^= 1 << uint(bit)

			var decoded Challenge
			if err := decoded.UnmarshalBinary(mutated); err != nil {
				continue // structural detection
			}
			forged := Solution{Challenge: decoded, Nonce: sol.Nonce}
			if err := ver.Verify(forged, "192.0.2.33"); err == nil {
				t.Fatalf("bit flip at byte %d bit %d survived verification", pos, bit)
			}
		}
	}
}
