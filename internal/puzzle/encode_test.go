package puzzle

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestChallengeBinaryRoundTrip(t *testing.T) {
	iss := newTestIssuer(t)
	ch, err := iss.Issue("198.51.100.23", 9)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Challenge
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	assertChallengeEqual(t, ch, got)
}

func TestChallengeTextRoundTrip(t *testing.T) {
	iss := newTestIssuer(t)
	ch, err := iss.Issue("2001:db8::1", 3)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := ch.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(string(txt), "+/=\n ") {
		t.Fatalf("text form not header-safe: %q", txt)
	}
	var got Challenge
	if err := got.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	assertChallengeEqual(t, ch, got)
}

// Property: round-tripping preserves verifiability — a decoded challenge's
// solved nonce still verifies, for random bindings and difficulties.
func TestEncodedChallengeStillVerifiesProperty(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	f := func(b uint8, dRaw uint8) bool {
		binding := strings.Repeat("x", int(b%32))
		d := 1 + int(dRaw%6)
		ch, err := iss.Issue(binding, d)
		if err != nil {
			return false
		}
		txt, err := ch.MarshalText()
		if err != nil {
			return false
		}
		var decoded Challenge
		if err := decoded.UnmarshalText(txt); err != nil {
			return false
		}
		sol := Solution{Challenge: decoded}
		for n := uint64(0); ; n++ {
			if decoded.Meets(n) {
				sol.Nonce = n
				break
			}
		}
		return ver.Verify(sol, binding) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	iss := newTestIssuer(t)
	ch, err := iss.Issue("c", 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", raw[:10]},
		{"missing_tag_byte", raw[:len(raw)-1]},
		{"bad_magic", append([]byte("XXXXXXXX"), raw[8:]...)},
		{"trailing_garbage", append(append([]byte(nil), raw...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var got Challenge
			if err := got.UnmarshalBinary(tt.data); err == nil {
				t.Fatal("corrupt encoding accepted")
			}
		})
	}
}

func TestUnmarshalTextRejectsGarbage(t *testing.T) {
	var ch Challenge
	if err := ch.UnmarshalText([]byte("!!!not-base64!!!")); err == nil {
		t.Fatal("invalid base64 accepted")
	}
}

func TestMarshalBinaryRejectsOversizedBinding(t *testing.T) {
	ch := Challenge{Binding: strings.Repeat("b", 300)}
	if _, err := ch.MarshalBinary(); !errors.Is(err, ErrBindingTooLong) {
		t.Fatalf("err = %v, want ErrBindingTooLong", err)
	}
}

func TestSolutionTextRoundTrip(t *testing.T) {
	iss := newTestIssuer(t)
	ch, err := iss.Issue("client-9", 5)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	txt, err := sol.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var got Solution
	if err := got.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if got.Nonce != sol.Nonce {
		t.Fatalf("nonce = %d, want %d", got.Nonce, sol.Nonce)
	}
	assertChallengeEqual(t, sol.Challenge, got.Challenge)
}

func TestSolutionUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"no_separator", "abcdef"},
		{"bad_nonce", "QUlQb1cvMQ.zzzz-not-hex"},
		{"bad_challenge", "%%%.ff"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var s Solution
			if err := s.UnmarshalText([]byte(tt.in)); err == nil {
				t.Fatal("garbage solution accepted")
			}
		})
	}
}

func TestChallengeStringIsHumanReadable(t *testing.T) {
	ch := Challenge{Version: 1, Difficulty: 7, Binding: "10.1.1.1",
		IssuedAt: time.Unix(0, 0).UTC(), TTL: time.Minute}
	s := ch.String()
	if !strings.Contains(s, "d=7") || !strings.Contains(s, "10.1.1.1") {
		t.Fatalf("String() = %q", s)
	}
}

func assertChallengeEqual(t *testing.T, want, got Challenge) {
	t.Helper()
	if got.Version != want.Version || got.Backend != want.Backend ||
		got.Space != want.Space || got.Rounds != want.Rounds ||
		got.Seed != want.Seed ||
		!got.IssuedAt.Equal(want.IssuedAt) || got.TTL != want.TTL ||
		got.Difficulty != want.Difficulty || got.Binding != want.Binding ||
		got.Tag != want.Tag {
		t.Fatalf("challenge mismatch:\n got %+v\nwant %+v", got, want)
	}
}
