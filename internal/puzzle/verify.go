package puzzle

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"time"
)

// Verifier checks solutions. It corresponds to the paper's lightweight
// "puzzle verification" module: one HMAC plus one SHA-256 evaluation per
// solution, independent of difficulty — the asymmetry that makes PoW a
// defense (see the Asymmetry benchmark).
//
// Verifier is safe for concurrent use.
type Verifier struct {
	key    []byte
	now    func() time.Time
	replay *ReplayCache
	skew   time.Duration
	macs   *macPool
	cache  *AuthCache
	tags   TagExchange

	// backend is the puzzle algorithm this verifier accepts; wantVersion
	// and wantBackend are the exact wire identity it requires, pinned at
	// construction. Anything else is ErrBadVersion, fail-closed — a v2
	// token never verifies on a v1 route and vice versa, independent of
	// the HMAC-domain separation that already makes such a downgrade
	// unforgeable.
	backend     Backend
	wantVersion uint8
	wantBackend BackendID
}

// VerifierOption customizes a Verifier.
type VerifierOption func(*Verifier)

// WithVerifierNow injects the verifier's clock. Defaults to time.Now.
func WithVerifierNow(now func() time.Time) VerifierOption {
	return func(v *Verifier) { v.now = now }
}

// WithReplayCache enables single-use enforcement of challenge seeds.
// Without it, a solved challenge can be redeemed repeatedly until expiry.
func WithReplayCache(c *ReplayCache) VerifierOption {
	return func(v *Verifier) { v.replay = c }
}

// WithClockSkew sets the tolerated clock skew between issuer and verifier
// (relevant when they are separate processes). Defaults to 2 s.
func WithClockSkew(skew time.Duration) VerifierOption {
	return func(v *Verifier) { v.skew = skew }
}

// WithVerifierBackend selects the puzzle algorithm this verifier
// accepts; it must match the paired issuer's WithIssuerBackend. Defaults
// to Hashcash(), i.e. Version1 tokens. Solutions in any other wire
// version or backend are rejected with ErrBadVersion.
func WithVerifierBackend(b Backend) VerifierOption {
	return func(v *Verifier) { v.backend = b }
}

// WithVerifierAuthCache authenticates challenges that are byte-identical
// to an entry of c — a challenge the sharing issuer produced or this
// verifier already HMAC-checked — by equality instead of an HMAC
// recomputation. A miss always falls back to the full HMAC check, so the
// cache affects cost, never outcomes. core.Framework wires this
// automatically; standalone verifiers (separate process from the issuer)
// gain little beyond repeat presentations.
func WithVerifierAuthCache(c *AuthCache) VerifierOption {
	return func(v *Verifier) { v.cache = c }
}

// TagExchange is the distributed replay-suppression seam: a fleet-wide
// view of redeemed challenge tags, fed and consulted by every node's
// verifier. The cluster package's Node implements it over time-bucketed
// rotating Bloom filters merged from peers.
//
// Tags pass by value ([TagSize]byte, one HMAC output) so the hot-path
// call sites never force a challenge to escape to the heap; SeenTag must
// therefore be cheap and allocation-free — it runs on the serving path of
// every verification.
type TagExchange interface {
	// SeenTag reports whether the tag was already redeemed anywhere in
	// the fleet as far as this node knows. It may err on the side of
	// suppression (a Bloom false positive rejects a fresh solution at its
	// declared rate) but never misses a tag it was told about.
	SeenTag(tag [TagSize]byte) bool

	// RedeemedTag records a successful local redemption for propagation
	// to peers. expires is when the underlying challenge leaves its
	// redemption window (TTL plus skew), after which the tag may be
	// forgotten.
	RedeemedTag(tag [TagSize]byte, expires time.Time)
}

// WithTagExchange consults x on every verification: a solution whose
// challenge tag the fleet has already seen fails closed with ErrReplayed,
// exactly like a local replay-cache hit, and every successful redemption
// is published back through x. The check sits at the same stage as the
// local replay cache — after all authenticity, binding, freshness, and
// solution checks — so a failed attempt never burns the tag either
// locally or fleet-wide.
func WithTagExchange(x TagExchange) VerifierOption {
	return func(v *Verifier) { v.tags = x }
}

// NewVerifier returns a Verifier holding the issuer's HMAC key.
func NewVerifier(key []byte, opts ...VerifierOption) (*Verifier, error) {
	if len(key) < minKeyLen {
		return nil, fmt.Errorf("%w (got %d)", ErrKeyTooShort, len(key))
	}
	v := &Verifier{
		key:     append([]byte(nil), key...),
		now:     time.Now,
		skew:    2 * time.Second,
		backend: Hashcash(),
	}
	for _, opt := range opts {
		opt(v)
	}
	if v.skew < 0 {
		return nil, fmt.Errorf("puzzle: negative clock skew %v", v.skew)
	}
	v.wantVersion = v.backend.WireVersion()
	if v.wantVersion >= Version2 {
		v.wantBackend = v.backend.ID()
	}
	v.macs = newMACPool(v.key)
	return v, nil
}

// Backend reports the puzzle algorithm this verifier accepts.
func (v *Verifier) Backend() Backend { return v.backend }

// Verify checks that sol is an authentic, fresh, unredeemed, and correct
// solution presented by the client identified by binding. An empty binding
// skips the binding check (for callers that have already authenticated the
// presenter). All failures wrap ErrVerify plus a specific sentinel.
func (v *Verifier) Verify(sol Solution, binding string) error {
	return v.VerifyAt(&sol, binding, v.now())
}

// VerifyAt is Verify against a caller-captured clock reading. Callers that
// verify a batch (or have already read the clock for evidence write-back)
// use it to pay for one time.Now per batch instead of one per solution;
// now must come from the same clock the verifier was built with. The
// solution is taken by pointer purely to spare the hot path two
// ~150-byte struct copies; it is never modified.
func (v *Verifier) VerifyAt(sol *Solution, binding string, now time.Time) error {
	ch := &sol.Challenge
	if ch.Version != v.wantVersion || ch.Backend != v.wantBackend {
		return fmt.Errorf("%w: %w: got v%d/%s, verifier accepts v%d/%s",
			ErrVerify, ErrBadVersion, ch.Version, ch.Backend, v.wantVersion, v.wantBackend)
	}
	if err := validateDifficulty(ch.Difficulty); err != nil {
		return fmt.Errorf("%w: %w", ErrVerify, err)
	}

	// Authenticate before trusting any field. The pooled scratch computes
	// the tag without allocating and keeps the canonical bytes around so
	// the solution digest below reuses them as its preimage prefix. A
	// challenge byte-identical to an AuthCache entry is authentic without
	// the HMAC: the cache only ever holds pairs the co-located issuer
	// produced or this verifier already checked.
	s := v.macs.get()
	defer v.macs.put(s)
	s.buf = ch.appendCanonical(s.buf[:0])
	if v.cache == nil || !v.cache.match(s.buf, &ch.Tag, &ch.Seed, ch.Backend) {
		tag := s.sumCanonical()
		if !hmac.Equal(tag[:], ch.Tag[:]) {
			return fmt.Errorf("%w: %w", ErrVerify, ErrBadTag)
		}
		if v.cache != nil {
			v.cache.store(s.buf, &ch.Tag, &ch.Seed, ch.Backend)
		}
	}

	if binding != "" && binding != ch.Binding {
		return fmt.Errorf("%w: %w: challenge bound to %q, presented by %q",
			ErrVerify, ErrBindingMismatch, ch.Binding, binding)
	}

	if ch.IssuedAt.After(now.Add(v.skew)) {
		return fmt.Errorf("%w: %w: issued %v ahead of verifier clock",
			ErrVerify, ErrNotYetValid, ch.IssuedAt.Sub(now))
	}
	if now.After(ch.ExpiresAt().Add(v.skew)) {
		return fmt.Errorf("%w: %w: expired %v ago",
			ErrVerify, ErrExpired, now.Sub(ch.ExpiresAt()))
	}

	// Equivalent to ch.Meets(sol.Nonce), but re-using the canonical bytes
	// already in s.buf instead of re-encoding them. The hashcash branch
	// stays the pre-backend inline digest; only authenticated challenges
	// reach the memory-hard branch, so its cost parameters are always
	// ones this deployment's issuer signed.
	s.buf = appendNonce(s.buf, sol.Nonce)
	if v.wantBackend == BackendBalloon {
		digest := balloonDigest(s.buf, ch.Space, ch.Rounds)
		if CountLeadingZeroBits(digest[:]) < ch.Difficulty {
			return fmt.Errorf("%w: %w: nonce %d", ErrVerify, ErrWrongSolution, sol.Nonce)
		}
	} else {
		digest := sha256.Sum256(s.buf)
		if CountLeadingZeroBits(digest[:]) < ch.Difficulty {
			return fmt.Errorf("%w: %w: nonce %d", ErrVerify, ErrWrongSolution, sol.Nonce)
		}
	}

	// Redeem last, so failed attempts do not burn the seed. The fleet
	// filter is consulted at the same stage as the local replay cache and
	// rejects identically as far as errors.Is(ErrReplayed) goes;
	// ErrFleetReplay only attributes the catch to the gossiped filter so
	// traces can tell the two planes apart.
	if v.tags != nil && v.tags.SeenTag(ch.Tag) {
		return fmt.Errorf("%w: %w", ErrVerify, ErrFleetReplay)
	}
	if v.replay != nil && !v.replay.Remember(ch.Seed, ch.ExpiresAt().Add(v.skew)) {
		return fmt.Errorf("%w: %w", ErrVerify, ErrReplayed)
	}
	if v.tags != nil {
		v.tags.RedeemedTag(ch.Tag, ch.ExpiresAt().Add(v.skew))
	}
	return nil
}
