package puzzle

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"time"
)

// testKey is a deterministic 32-byte HMAC key for tests.
var testKey = []byte("0123456789abcdef0123456789abcdef")

// fixedNow returns a clock pinned to a fixed instant.
func fixedNow(at time.Time) func() time.Time {
	return func() time.Time { return at }
}

// seededRand adapts math/rand/v2 into an io.Reader for deterministic seeds.
type seededRand struct{ rng *rand.Rand }

func (s seededRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.rng.Uint32())
	}
	return len(p), nil
}

func newTestIssuer(t *testing.T, opts ...IssuerOption) *Issuer {
	t.Helper()
	iss, err := NewIssuer(testKey, opts...)
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	return iss
}

func TestNewIssuerRejectsShortKey(t *testing.T) {
	if _, err := NewIssuer([]byte("short")); !errors.Is(err, ErrKeyTooShort) {
		t.Fatalf("err = %v, want ErrKeyTooShort", err)
	}
}

func TestNewIssuerRejectsBadConfig(t *testing.T) {
	if _, err := NewIssuer(testKey, WithTTL(0)); err == nil {
		t.Error("zero TTL accepted")
	}
	if _, err := NewIssuer(testKey, WithIssuerMaxDifficulty(0)); err == nil {
		t.Error("zero max difficulty accepted")
	}
	if _, err := NewIssuer(testKey, WithIssuerMaxDifficulty(65)); err == nil {
		t.Error("max difficulty above protocol cap accepted")
	}
}

func TestIssueFields(t *testing.T) {
	at := time.Date(2022, 3, 21, 12, 0, 0, 0, time.UTC)
	iss := newTestIssuer(t, WithIssuerNow(fixedNow(at)), WithTTL(90*time.Second))
	ch, err := iss.Issue("192.0.2.7", 6)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if ch.Version != Version1 {
		t.Errorf("Version = %d", ch.Version)
	}
	if !ch.IssuedAt.Equal(at) {
		t.Errorf("IssuedAt = %v, want %v", ch.IssuedAt, at)
	}
	if ch.TTL != 90*time.Second {
		t.Errorf("TTL = %v", ch.TTL)
	}
	if ch.Difficulty != 6 {
		t.Errorf("Difficulty = %d", ch.Difficulty)
	}
	if ch.Binding != "192.0.2.7" {
		t.Errorf("Binding = %q", ch.Binding)
	}
	if ch.Seed == ([SeedSize]byte{}) {
		t.Error("Seed is all zeros: entropy not read")
	}
	if ch.Tag == ([TagSize]byte{}) {
		t.Error("Tag is all zeros: not signed")
	}
}

func TestIssueUniqueSeeds(t *testing.T) {
	iss := newTestIssuer(t)
	seen := make(map[[SeedSize]byte]bool)
	for i := 0; i < 64; i++ {
		ch, err := iss.Issue("c", 1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ch.Seed] {
			t.Fatal("duplicate seed issued")
		}
		seen[ch.Seed] = true
	}
}

func TestIssueDifficultyValidation(t *testing.T) {
	iss := newTestIssuer(t, WithIssuerMaxDifficulty(20))
	tests := []struct {
		name string
		d    int
		ok   bool
	}{
		{"zero", 0, false},
		{"negative", -3, false},
		{"min", MinDifficulty, true},
		{"cap", 20, true},
		{"above_cap", 21, false},
		{"above_protocol", 65, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := iss.Issue("c", tt.d)
			if tt.ok && err != nil {
				t.Fatalf("Issue(%d) = %v, want nil", tt.d, err)
			}
			if !tt.ok && !errors.Is(err, ErrInvalidDifficulty) {
				t.Fatalf("Issue(%d) = %v, want ErrInvalidDifficulty", tt.d, err)
			}
		})
	}
}

func TestIssueRejectsLongBinding(t *testing.T) {
	iss := newTestIssuer(t)
	if _, err := iss.Issue(strings.Repeat("x", 256), 1); !errors.Is(err, ErrBindingTooLong) {
		t.Fatalf("err = %v, want ErrBindingTooLong", err)
	}
}

func TestIssueDeterministicWithInjectedRand(t *testing.T) {
	at := time.Unix(1000, 0)
	mk := func() *Issuer {
		return newTestIssuer(t,
			WithIssuerNow(fixedNow(at)),
			WithIssuerRand(seededRand{rand.New(rand.NewPCG(1, 2))}))
	}
	ch1, err := mk().Issue("c", 3)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := mk().Issue("c", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ch1.Seed != ch2.Seed || ch1.Tag != ch2.Tag {
		t.Fatal("identical issuer state produced different challenges")
	}
}

func TestIssuerKeyIsCopied(t *testing.T) {
	key := append([]byte(nil), testKey...)
	iss, err := NewIssuer(key)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := iss.Issue("c", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range key {
		key[i] = 0 // caller mutates its copy
	}
	ver, err := NewVerifier(testKey)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrDie(t, ch)
	if err := ver.Verify(sol, ""); err != nil {
		t.Fatalf("verify after caller mutated key bytes: %v", err)
	}
}
