package puzzle

import (
	"sync"
	"testing"
	"time"
)

func seed(b byte) [SeedSize]byte {
	var s [SeedSize]byte
	s[0] = b
	return s
}

func TestReplayCacheRemember(t *testing.T) {
	c := NewReplayCache(10, nil)
	exp := time.Now().Add(time.Minute)
	if !c.Remember(seed(1), exp) {
		t.Fatal("fresh seed reported as replay")
	}
	if c.Remember(seed(1), exp) {
		t.Fatal("replayed seed accepted")
	}
	if !c.Contains(seed(1)) {
		t.Fatal("Contains() = false for live seed")
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

func TestReplayCacheExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewReplayCache(10, clock)
	c.Remember(seed(1), now.Add(10*time.Second))

	now = now.Add(5 * time.Second)
	if !c.Contains(seed(1)) {
		t.Fatal("seed expired early")
	}
	now = now.Add(6 * time.Second) // past expiry
	if c.Contains(seed(1)) {
		t.Fatal("expired seed still contained")
	}
	// After expiry the same seed may be remembered again (a fresh challenge
	// can never share a seed in practice, but the cache must not wedge).
	if !c.Remember(seed(1), now.Add(time.Minute)) {
		t.Fatal("re-remember after expiry failed")
	}
}

func TestReplayCacheCapacityEvictsSoonest(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := NewReplayCache(2, clock)
	c.Remember(seed(1), now.Add(10*time.Second)) // soonest to expire
	c.Remember(seed(2), now.Add(20*time.Second))
	c.Remember(seed(3), now.Add(30*time.Second)) // forces eviction of seed 1

	if c.Contains(seed(1)) {
		t.Fatal("soonest-expiring entry not evicted")
	}
	if !c.Contains(seed(2)) || !c.Contains(seed(3)) {
		t.Fatal("later-expiring entries evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestReplayCacheMinCapacityOne(t *testing.T) {
	c := NewReplayCache(0, nil) // clamped to 1
	exp := time.Now().Add(time.Minute)
	if !c.Remember(seed(1), exp) {
		t.Fatal("first remember failed")
	}
	if !c.Remember(seed(2), exp) {
		t.Fatal("second remember failed (should evict first)")
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

func TestReplayCacheSweepKeepsLatestRegistration(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := NewReplayCache(10, clock)
	c.Remember(seed(1), now.Add(1*time.Second))
	now = now.Add(2 * time.Second) // first registration expires
	if !c.Remember(seed(1), now.Add(10*time.Second)) {
		t.Fatal("re-remember failed")
	}
	// Sweeping the stale heap entry must not delete the fresh registration.
	now = now.Add(1 * time.Second)
	if !c.Contains(seed(1)) {
		t.Fatal("stale heap entry deleted the fresh registration")
	}
}

func TestReplayCacheConcurrent(t *testing.T) {
	c := NewReplayCache(1024, nil)
	exp := time.Now().Add(time.Minute)
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if c.Remember(seed(byte(i)), exp) {
					mu.Lock()
					accepted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if accepted != 64 {
		t.Fatalf("accepted = %d, want exactly 64 (one per distinct seed)", accepted)
	}
}
