package puzzle

import (
	"bytes"
	"crypto/subtle"
	"sync"
)

// AuthCache is a fixed-size memo of authenticated challenges shared between
// a co-located Issuer and Verifier (the common single-process deployment,
// and the one core.Framework always builds). Every entry is a
// (canonical bytes, tag) pair that either the issuer produced under its own
// key or the verifier has already authenticated with a full HMAC check, so
// a presented challenge that is byte-identical to an entry is authentic by
// construction — the verifier can skip recomputing the HMAC and check
// equality instead. Anything else (a cache miss, a colliding slot, a
// binding too long for the inline buffer) falls back to the full HMAC
// path, so the cache changes verification cost, never its outcome.
//
// The cache holds no secrets: canonical bytes and tags are exactly what
// clients receive in their challenges. The tag comparison is still
// constant-time out of hygiene, though a mismatch only ever compares a
// presented tag against an authentic tag the presenter does not hold.
//
// Slots are indexed by challenge seed. Seeds come from crypto/rand, so the
// index bits are uniform and an attacker cannot aim evictions; eviction is
// in any case only a performance event, never a correctness one.
//
// AuthCache is safe for concurrent use; each slot carries its own mutex,
// held only for a bounded copy or compare.
type AuthCache struct {
	slots []authSlot
	mask  uint32 // len(slots)-1; len is always a power of two
}

const (
	// authCacheSlots is the default slot count (power of two). At ~200 B
	// per slot the whole cache stays under half a megabyte while giving an
	// issued challenge a 1/2048 chance per subsequent issuance of losing
	// its slot before redemption. Deployments expecting more concurrent
	// outstanding challenges size up via NewAuthCacheSize.
	authCacheSlots = 2048

	// authCacheMinSlots / authCacheMaxSlots clamp NewAuthCacheSize.
	// The ceiling (4M slots, ~800 MB) is a guard against a mistyped spec,
	// not a recommendation.
	authCacheMinSlots = 64
	authCacheMaxSlots = 1 << 22

	// authCacheMaxCanonical bounds the inline canonical buffer. It covers
	// every binding up to 99 bytes (an IPv6 literal is at most 45);
	// longer canonicals simply never enter the cache.
	authCacheMaxCanonical = 160
)

type authSlot struct {
	mu  sync.Mutex
	n   uint16
	tag [TagSize]byte
	buf [authCacheMaxCanonical]byte
}

// NewAuthCache returns an empty cache with the default slot count, ready
// to be shared between an Issuer (via WithIssuerAuthCache) and a Verifier
// (via WithVerifierAuthCache).
func NewAuthCache() *AuthCache {
	return NewAuthCacheSize(authCacheSlots)
}

// NewAuthCacheSize returns an empty cache with at least slots slots,
// rounded up to the next power of two and clamped to [64, 1<<22].
// Sizing rule of thumb: the hit rate for a redeemed challenge is about
// 1 - outstanding/slots, where outstanding is the number of challenges
// issued but not yet redeemed at any instant — pick slots ≥ 10× the
// expected outstanding count. A miss is never an error; it only costs
// the full HMAC recomputation.
func NewAuthCacheSize(slots int) *AuthCache {
	if slots < authCacheMinSlots {
		slots = authCacheMinSlots
	}
	if slots > authCacheMaxSlots {
		slots = authCacheMaxSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &AuthCache{slots: make([]authSlot, n), mask: uint32(n - 1)}
}

// slotFor maps a (seed, backend) pair to its slot. Seed bytes are
// uniform, so four of them index the table directly (covering every
// legal size up to the 4M-slot ceiling); the backend ID is mixed in so
// the cache is keyed by backend identity as well — entries from
// different puzzle backends can never alias onto one another's slots, on
// top of the canonical bytes (which embed the backend for Version2)
// already making a cross-backend byte match impossible.
func (c *AuthCache) slotFor(seed *[SeedSize]byte, backend BackendID) *authSlot {
	w := uint32(seed[0]) | uint32(seed[1])<<8 | uint32(seed[2])<<16 | uint32(seed[3])<<24
	idx := (w ^ uint32(backend)*0x9E37) & c.mask
	return &c.slots[idx]
}

// Slots reports the cache's slot count (a power of two).
func (c *AuthCache) Slots() int { return len(c.slots) }

// store records an authenticated (canonical, tag) pair. The caller attests
// authenticity: the issuer calls it with tags it just computed, the
// verifier only after hmac.Equal has passed.
func (c *AuthCache) store(canonical []byte, tag *[TagSize]byte, seed *[SeedSize]byte, backend BackendID) {
	if len(canonical) > authCacheMaxCanonical {
		return
	}
	s := c.slotFor(seed, backend)
	s.mu.Lock()
	s.n = uint16(len(canonical))
	copy(s.buf[:], canonical)
	s.tag = *tag
	s.mu.Unlock()
}

// match reports whether (canonical, tag) is byte-identical to the cached
// authenticated pair in the seed's slot. A false return says nothing about
// authenticity — the caller must run the full HMAC check.
func (c *AuthCache) match(canonical []byte, tag *[TagSize]byte, seed *[SeedSize]byte, backend BackendID) bool {
	if len(canonical) > authCacheMaxCanonical {
		return false
	}
	s := c.slotFor(seed, backend)
	s.mu.Lock()
	ok := int(s.n) == len(canonical) &&
		bytes.Equal(s.buf[:s.n], canonical) &&
		subtle.ConstantTimeCompare(s.tag[:], tag[:]) == 1
	s.mu.Unlock()
	return ok
}
