package puzzle

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// BackendID identifies a puzzle algorithm on the wire. Version2 tokens
// carry it explicitly; Version1 tokens are implicitly hashcash and carry
// no backend byte (their BackendID is the zero value).
type BackendID uint8

const (
	// BackendHashcash is the paper's CPU-bound partial-preimage backend.
	BackendHashcash BackendID = 1

	// BackendBalloon is the self-contained memory-hard backend.
	BackendBalloon BackendID = 2
)

// String names the backend for diagnostics.
func (id BackendID) String() string {
	switch id {
	case BackendHashcash:
		return "hashcash"
	case BackendBalloon:
		return "balloon"
	}
	return fmt.Sprintf("backend(%d)", uint8(id))
}

// ErrUnknownBackend reports a backend name or ID this build does not
// implement.
var ErrUnknownBackend = errors.New("puzzle: unknown puzzle backend")

// Backend is one puzzle algorithm: an issuance/verification cost-model
// contract plus the wire identity that keeps solutions from one backend
// from ever redeeming under another. The two production implementations
// are Hashcash (CPU-bound, Version1 wire format, bit-for-bit compatible
// with every token issued before backends existed) and Balloon
// (memory-hard, Version2 wire format carrying the backend ID).
//
// The interface is sealed: implementations live in this package, so the
// issuer and verifier can rely on the wire-format invariants (a Version2
// challenge never verifies as Version1 and vice versa — ErrBadVersion,
// fail-closed) without trusting third-party code.
type Backend interface {
	// ID is the wire identity carried by Version2 tokens.
	ID() BackendID

	// Name is the spec-grammar name ("hashcash", "balloon").
	Name() string

	// Spec renders the backend's full configuration in the deployment
	// spec grammar (`hashcash(bits=…)`, `balloon(space=…, time=…)`).
	// Two backends are interchangeable iff their Specs are equal.
	Spec() string

	// WireVersion is the token format this backend issues (Version1 for
	// hashcash, Version2 for everything after).
	WireVersion() uint8

	// DifficultyCap is the largest difficulty this backend can
	// meaningfully price; issuance clamps to min(cap, issuer cap).
	DifficultyCap() int

	// AttemptCost is the calibration hint: expected hash evaluations
	// per solver attempt (1 for hashcash; space·(1+4·time) for
	// balloon). A d-difficult challenge costs ~2^d·AttemptCost hashes.
	AttemptCost() float64

	// MemoryPerAttempt is the working-set bytes one attempt touches —
	// the quantity GPU/ASIC solvers cannot discount.
	MemoryPerAttempt() int

	// params exposes the wire cost parameters to the issuer; it also
	// seals the interface against outside implementations.
	params() (space, rounds uint32)
}

// hashcashBackend is the paper's SHA-256 partial-preimage puzzle.
type hashcashBackend struct {
	bits int
}

// defaultHashcash backs Hashcash() so the zero-configuration path
// allocates nothing.
var defaultHashcash Backend = hashcashBackend{bits: MaxDifficulty}

// Hashcash returns the default CPU-bound backend: the paper's SHA-256
// partial-preimage puzzle at the full protocol difficulty range. It is
// what every Issuer and Verifier uses unless configured otherwise, and
// its tokens are bit-for-bit the pre-backend Version1 wire format.
func Hashcash() Backend { return defaultHashcash }

// NewHashcash returns a hashcash backend whose difficulty cap is bits
// (the `hashcash(bits=…)` spec form).
func NewHashcash(bits int) (Backend, error) {
	if bits < MinDifficulty || bits > MaxDifficulty {
		return nil, fmt.Errorf("%w: hashcash bits %d", ErrInvalidDifficulty, bits)
	}
	return hashcashBackend{bits: bits}, nil
}

func (hashcashBackend) ID() BackendID        { return BackendHashcash }
func (hashcashBackend) Name() string         { return "hashcash" }
func (b hashcashBackend) Spec() string       { return fmt.Sprintf("hashcash(bits=%d)", b.bits) }
func (hashcashBackend) WireVersion() uint8   { return Version1 }
func (b hashcashBackend) DifficultyCap() int { return b.bits }
func (hashcashBackend) AttemptCost() float64 { return 1 }
func (hashcashBackend) MemoryPerAttempt() int {
	return sha256BlockBytes // one compression-function state
}
func (hashcashBackend) params() (uint32, uint32) { return 0, 0 }

// sha256BlockBytes is SHA-256's working set: one 64-byte message block.
const sha256BlockBytes = 64

// balloonBackend is the memory-hard puzzle; see balloon.go for the
// function itself.
type balloonBackend struct {
	space  uint32
	rounds uint32
}

// NewBalloon returns a memory-hard backend with the given space (buffer
// blocks) and time (mixing rounds) parameters — the
// `balloon(space=…, time=…)` spec form. Zero picks the package default
// for that parameter.
func NewBalloon(space, rounds int) (Backend, error) {
	if space == 0 {
		space = DefaultBalloonSpace
	}
	if rounds == 0 {
		rounds = DefaultBalloonRounds
	}
	if space < minBalloonSpace || space > maxBalloonSpace {
		return nil, fmt.Errorf("puzzle: balloon space %d not in [%d, %d]",
			space, minBalloonSpace, maxBalloonSpace)
	}
	if rounds < minBalloonRounds || rounds > maxBalloonRounds {
		return nil, fmt.Errorf("puzzle: balloon time %d not in [%d, %d]",
			rounds, minBalloonRounds, maxBalloonRounds)
	}
	return balloonBackend{space: uint32(space), rounds: uint32(rounds)}, nil
}

func (balloonBackend) ID() BackendID { return BackendBalloon }
func (balloonBackend) Name() string  { return "balloon" }
func (b balloonBackend) Spec() string {
	return fmt.Sprintf("balloon(space=%d, time=%d)", b.space, b.rounds)
}
func (balloonBackend) WireVersion() uint8 { return Version2 }

// DifficultyCap: each balloon attempt already costs space·(1+4·time)
// hashes, so the leading-zero dial tops out far below hashcash's.
func (balloonBackend) DifficultyCap() int { return 32 }

func (b balloonBackend) AttemptCost() float64 {
	return float64(b.space) * (1 + (balloonDelta+1)*float64(b.rounds))
}
func (b balloonBackend) MemoryPerAttempt() int    { return int(b.space) * balloonBlockSize }
func (b balloonBackend) params() (uint32, uint32) { return b.space, b.rounds }

// ParseBackendSpec resolves a backend from its deployment-spec form:
// `hashcash`, `hashcash(bits=…)`, or `balloon(space=…, time=…)`. The
// empty string means the default hashcash backend, so a pipeline with no
// `puzzle` line parses to the same backend as an explicit `puzzle
// hashcash`. Unknown names and parameters are errors, never silently
// ignored — the same contract as every other component spec.
func ParseBackendSpec(spec string) (Backend, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return Hashcash(), nil
	}
	name, params, err := splitBackendSpec(s)
	if err != nil {
		return nil, err
	}
	switch name {
	case "hashcash":
		bits := MaxDifficulty
		for _, p := range params {
			if p.key != "bits" {
				return nil, fmt.Errorf("puzzle: hashcash has no parameter %q", p.key)
			}
			bits = p.val
		}
		return NewHashcash(bits)
	case "balloon":
		space, rounds := DefaultBalloonSpace, DefaultBalloonRounds
		for _, p := range params {
			switch p.key {
			case "space":
				space = p.val
			case "time":
				rounds = p.val
			default:
				return nil, fmt.Errorf("puzzle: balloon has no parameter %q", p.key)
			}
		}
		return NewBalloon(space, rounds)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownBackend, name)
}

// backendParam is one parsed k=v pair, kept ordered so error messages
// are deterministic.
type backendParam struct {
	key string
	val int
}

// splitBackendSpec parses `name` or `name(k=v, k2=v2)` with integer
// values — the component-spec grammar restricted to what backends need.
func splitBackendSpec(s string) (string, []backendParam, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, nil, nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("puzzle: backend spec %q missing closing parenthesis", s)
	}
	name := strings.TrimSpace(s[:open])
	body := strings.TrimSpace(s[open+1 : len(s)-1])
	if body == "" {
		return name, nil, nil
	}
	var params []backendParam
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return "", nil, fmt.Errorf("puzzle: backend parameter %q is not k=v", strings.TrimSpace(part))
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return "", nil, fmt.Errorf("puzzle: backend parameter %q: %w", strings.TrimSpace(k), err)
		}
		params = append(params, backendParam{key: strings.TrimSpace(k), val: n})
	}
	return name, params, nil
}
