package puzzle

import (
	"container/heap"
	"sync"
	"time"
)

// ReplayCache remembers redeemed challenge seeds until they expire, so each
// issued challenge can be used at most once — the paper's defense against
// pre-computation and replay. Entries evict lazily on expiry; when the
// cache is full, the entry closest to expiring is evicted first, which is
// the cheapest safe choice (it protects the remaining window of the
// longest-lived seeds).
//
// ReplayCache is safe for concurrent use.
type ReplayCache struct {
	mu      sync.Mutex
	entries map[[SeedSize]byte]time.Time
	order   expiryHeap
	max     int
	now     func() time.Time
}

// NewReplayCache returns a cache holding at most max seeds. The now
// function may be nil, in which case time.Now is used.
func NewReplayCache(max int, now func() time.Time) *ReplayCache {
	if max < 1 {
		max = 1
	}
	if now == nil {
		now = time.Now
	}
	return &ReplayCache{
		entries: make(map[[SeedSize]byte]time.Time, max),
		max:     max,
		now:     now,
	}
}

// Remember records seed as redeemed until expires. It reports false if the
// seed was already present (a replay), true if the seed was fresh.
func (c *ReplayCache) Remember(seed [SeedSize]byte, expires time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := c.now()
	// Amortized expiry: drop at most a few expired entries per call so the
	// lock hold time stays bounded on the verify hot path. Correctness
	// does not depend on eager sweeping — the replay check below compares
	// expiries directly — and capacity pressure is handled by eviction.
	c.sweepLocked(now, maxSweepPerOp)

	if until, ok := c.entries[seed]; ok && until.After(now) {
		return false
	}
	for len(c.entries) >= c.max {
		c.evictSoonestLocked()
	}
	c.entries[seed] = expires
	heap.Push(&c.order, expiryEntry{seed: seed, expires: expires})
	return true
}

// Contains reports whether seed is currently remembered (and unexpired).
func (c *ReplayCache) Contains(seed [SeedSize]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	until, ok := c.entries[seed]
	return ok && until.After(c.now())
}

// Len reports the number of live (unexpired) entries.
func (c *ReplayCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.now(), len(c.order))
	return len(c.entries)
}

// maxSweepPerOp bounds how many expired entries one Remember call drops,
// keeping the critical section short under heavy verify traffic.
const maxSweepPerOp = 8

// sweepLocked drops up to limit expired entries from the front of the
// expiry order.
func (c *ReplayCache) sweepLocked(now time.Time, limit int) {
	for n := 0; n < limit && len(c.order) > 0 && !c.order[0].expires.After(now); n++ {
		e := heap.Pop(&c.order).(expiryEntry)
		// Only delete if the map still holds this exact registration; a
		// seed can be re-remembered with a later expiry after expiring.
		if until, ok := c.entries[e.seed]; ok && until.Equal(e.expires) {
			delete(c.entries, e.seed)
		}
	}
}

// evictSoonestLocked removes the live entry closest to expiring.
func (c *ReplayCache) evictSoonestLocked() {
	for len(c.order) > 0 {
		e := heap.Pop(&c.order).(expiryEntry)
		if until, ok := c.entries[e.seed]; ok && until.Equal(e.expires) {
			delete(c.entries, e.seed)
			return
		}
	}
	// Heap drained but map non-empty cannot happen: every map entry has a
	// corresponding heap entry. Guard anyway to keep the invariant local.
	for k := range c.entries {
		delete(c.entries, k)
		return
	}
}

// expiryEntry orders seeds by expiry for eviction.
type expiryEntry struct {
	seed    [SeedSize]byte
	expires time.Time
}

// expiryHeap is a min-heap on expiry time.
type expiryHeap []expiryEntry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].expires.Before(h[j].expires) }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
