package puzzle

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"time"
)

// minKeyLen is the minimum HMAC key length the issuer accepts; shorter keys
// give away the only secret in the protocol.
const minKeyLen = 16

// ErrKeyTooShort reports an HMAC key below the minimum safe length.
var ErrKeyTooShort = errors.New("puzzle: key shorter than 16 bytes")

// Issuer generates authenticated challenges. It corresponds to the paper's
// "puzzle generation" module: it collects the request-related data
// (timestamp, unique seed) and the difficulty chosen by the policy module,
// and relays the result to the client.
//
// Issuer is safe for concurrent use.
type Issuer struct {
	key           []byte
	now           func() time.Time
	rand          io.Reader
	ttl           time.Duration
	maxDifficulty int
	macs          *macPool
	cache         *AuthCache

	// backend is the puzzle algorithm this issuer signs for; the wire
	// fields below are precomputed from it at construction so Issue
	// writes plain struct fields instead of making interface calls on
	// the hot path.
	backend   Backend
	version   uint8
	backendID BackendID
	space     uint32
	rounds    uint32
}

// IssuerOption customizes an Issuer.
type IssuerOption func(*Issuer)

// WithIssuerNow injects the issuer's clock, enabling virtual-time tests and
// simulation. Defaults to time.Now.
func WithIssuerNow(now func() time.Time) IssuerOption {
	return func(i *Issuer) { i.now = now }
}

// WithIssuerRand injects the seed entropy source. Defaults to crypto/rand.
func WithIssuerRand(r io.Reader) IssuerOption {
	return func(i *Issuer) { i.rand = r }
}

// WithTTL sets how long issued challenges stay redeemable. Defaults to
// DefaultTTL.
func WithTTL(ttl time.Duration) IssuerOption {
	return func(i *Issuer) { i.ttl = ttl }
}

// WithIssuerMaxDifficulty caps the difficulty this issuer will sign.
// Defaults to 32, half the protocol ceiling, because nothing a policy can
// legitimately ask for exceeds it.
func WithIssuerMaxDifficulty(d int) IssuerOption {
	return func(i *Issuer) { i.maxDifficulty = d }
}

// WithIssuerBackend selects the puzzle algorithm this issuer signs for.
// Defaults to Hashcash(), which issues the pre-backend Version1 wire
// format bit for bit; any other backend issues Version2 tokens carrying
// its ID and cost parameters. The issuer's difficulty cap is clamped to
// the backend's DifficultyCap. The paired Verifier must be built with
// the same backend (WithVerifierBackend).
func WithIssuerBackend(b Backend) IssuerOption {
	return func(i *Issuer) { i.backend = b }
}

// WithIssuerAuthCache publishes every issued challenge into c, so a
// Verifier sharing the same cache (WithVerifierAuthCache) authenticates it
// by equality instead of recomputing the HMAC. Only useful when issuer and
// verifier live in one process; core.Framework wires this automatically.
func WithIssuerAuthCache(c *AuthCache) IssuerOption {
	return func(i *Issuer) { i.cache = c }
}

// NewIssuer returns an Issuer that signs challenges with key. The key must
// be at least 16 bytes; the same key must be given to the Verifier.
func NewIssuer(key []byte, opts ...IssuerOption) (*Issuer, error) {
	if len(key) < minKeyLen {
		return nil, fmt.Errorf("%w (got %d)", ErrKeyTooShort, len(key))
	}
	i := &Issuer{
		key:           append([]byte(nil), key...),
		now:           time.Now,
		rand:          rand.Reader,
		ttl:           DefaultTTL,
		maxDifficulty: 32,
		backend:       Hashcash(),
	}
	for _, opt := range opts {
		opt(i)
	}
	if i.ttl <= 0 {
		return nil, fmt.Errorf("puzzle: non-positive TTL %v", i.ttl)
	}
	if i.maxDifficulty < MinDifficulty || i.maxDifficulty > MaxDifficulty {
		return nil, fmt.Errorf("%w: issuer cap %d", ErrInvalidDifficulty, i.maxDifficulty)
	}
	// The effective cap is the tighter of the issuer's and the backend's.
	if cap := i.backend.DifficultyCap(); cap < i.maxDifficulty {
		i.maxDifficulty = cap
	}
	i.version = i.backend.WireVersion()
	if i.version >= Version2 {
		i.backendID = i.backend.ID()
		i.space, i.rounds = i.backend.params()
	}
	i.macs = newMACPool(i.key)
	return i, nil
}

// Backend reports the puzzle algorithm this issuer signs for.
func (i *Issuer) Backend() Backend { return i.backend }

// Issue creates a d-difficult challenge bound to the given client identity.
func (i *Issuer) Issue(binding string, difficulty int) (Challenge, error) {
	if err := validateDifficulty(difficulty); err != nil {
		return Challenge{}, err
	}
	if difficulty > i.maxDifficulty {
		return Challenge{}, fmt.Errorf("%w: %d exceeds issuer cap %d",
			ErrInvalidDifficulty, difficulty, i.maxDifficulty)
	}
	if len(binding) > maxBindingLen {
		return Challenge{}, ErrBindingTooLong
	}
	ch := Challenge{
		Version:    i.version,
		Backend:    i.backendID,
		Space:      i.space,
		Rounds:     i.rounds,
		IssuedAt:   i.now(),
		TTL:        i.ttl,
		Difficulty: difficulty,
		Binding:    binding,
	}
	// The seed is read into pooled scratch (not ch.Seed directly) so the
	// returned challenge does not escape to the heap through the entropy
	// reader's interface call.
	s := i.macs.get()
	if _, err := io.ReadFull(i.rand, s.seed[:]); err != nil {
		i.macs.put(s)
		return Challenge{}, fmt.Errorf("puzzle: read seed entropy: %w", err)
	}
	ch.Seed = s.seed
	ch.Tag = s.tagOf(&ch)
	if i.cache != nil {
		i.cache.store(s.buf, &ch.Tag, &ch.Seed, i.backendID)
	}
	i.macs.put(s)
	return ch, nil
}

// maxIssueChunk bounds how many seeds IssueBatch reads per entropy call
// (1 KiB of scratch), so arbitrarily large batches cannot inflate the
// pooled buffer.
const maxIssueChunk = 64

// IssueBatch issues one challenge per (binding, difficulty) pair into
// dst[i], amortizing the clock read, the pooled MAC scratch checkout, and —
// the dominant saving — the entropy reads: seeds are drawn one
// crypto/rand call per chunk of up to maxIssueChunk challenges instead of
// one per challenge. A negative difficulty is the caller's "no challenge
// here" sentinel (a bypassed slot in a decision batch) and leaves dst[i]
// zero. The whole batch is validated before any entropy is consumed, so an
// error means dst holds no fresh challenges.
func (i *Issuer) IssueBatch(bindings []string, difficulties []int, dst []Challenge) error {
	if len(difficulties) != len(bindings) {
		return fmt.Errorf("puzzle: batch shape mismatch: %d bindings, %d difficulties",
			len(bindings), len(difficulties))
	}
	if len(dst) < len(bindings) {
		return fmt.Errorf("puzzle: batch destination holds %d, need %d", len(dst), len(bindings))
	}
	for k, d := range difficulties {
		if d < 0 {
			continue
		}
		if err := validateDifficulty(d); err != nil {
			return err
		}
		if d > i.maxDifficulty {
			return fmt.Errorf("%w: %d exceeds issuer cap %d", ErrInvalidDifficulty, d, i.maxDifficulty)
		}
		if len(bindings[k]) > maxBindingLen {
			return ErrBindingTooLong
		}
	}
	now := i.now()
	s := i.macs.get()
	defer i.macs.put(s)
	for start := 0; start < len(bindings); {
		end := min(start+maxIssueChunk, len(bindings))
		n := 0
		for k := start; k < end; k++ {
			if difficulties[k] >= 0 {
				n++
			}
		}
		if n > 0 {
			if cap(s.seeds) < n*SeedSize {
				s.seeds = make([]byte, n*SeedSize)
			}
			buf := s.seeds[:n*SeedSize]
			if _, err := io.ReadFull(i.rand, buf); err != nil {
				return fmt.Errorf("puzzle: read seed entropy: %w", err)
			}
			si := 0
			for k := start; k < end; k++ {
				if difficulties[k] < 0 {
					dst[k] = Challenge{}
					continue
				}
				ch := Challenge{
					Version:    i.version,
					Backend:    i.backendID,
					Space:      i.space,
					Rounds:     i.rounds,
					IssuedAt:   now,
					TTL:        i.ttl,
					Difficulty: difficulties[k],
					Binding:    bindings[k],
				}
				copy(ch.Seed[:], buf[si*SeedSize:(si+1)*SeedSize])
				si++
				ch.Tag = s.tagOf(&ch)
				if i.cache != nil {
					i.cache.store(s.buf, &ch.Tag, &ch.Seed, i.backendID)
				}
				dst[k] = ch
			}
		} else {
			for k := start; k < end; k++ {
				dst[k] = Challenge{}
			}
		}
		start = end
	}
	return nil
}
