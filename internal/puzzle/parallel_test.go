package puzzle

import (
	"context"
	"errors"
	"testing"
)

func TestNewParallelSolverValidation(t *testing.T) {
	if _, err := NewParallelSolver(WithWorkers(0)); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewParallelSolver(WithWorkers(-2)); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestParallelSolveFindsValidNonce(t *testing.T) {
	iss := newTestIssuer(t)
	ver := newTestVerifier(t)
	ps, err := NewParallelSolver(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{1, 6, 12} {
		ch, err := iss.Issue("client", d)
		if err != nil {
			t.Fatal(err)
		}
		sol, stats, err := ps.Solve(context.Background(), ch)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !ch.Meets(sol.Nonce) {
			t.Fatalf("d=%d: nonce %d does not meet difficulty", d, sol.Nonce)
		}
		if stats.Attempts == 0 {
			t.Fatalf("d=%d: zero attempts reported", d)
		}
		if err := ver.Verify(sol, "client"); err != nil {
			t.Fatalf("d=%d: parallel solution rejected: %v", d, err)
		}
	}
}

func TestParallelSolveAgreesWithSequentialVerification(t *testing.T) {
	// The parallel solver may find a different nonce than the sequential
	// one; both must satisfy the same predicate.
	iss := newTestIssuer(t)
	ch, err := iss.Issue("client", 10)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewParallelSolver(WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ps.Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Meets(seq.Nonce) || !ch.Meets(par.Nonce) {
		t.Fatal("one of the solutions does not meet the difficulty")
	}
}

func TestParallelSolveContextCancellation(t *testing.T) {
	iss := newTestIssuer(t, WithIssuerMaxDifficulty(32))
	ch, err := iss.Issue("client", 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps, err := NewParallelSolver(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ps.Solve(ctx, ch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParallelSolveNonceLimit(t *testing.T) {
	iss := newTestIssuer(t, WithIssuerMaxDifficulty(32))
	ch, err := iss.Issue("client", 30)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewParallelSolver(WithWorkers(2), WithParallelNonceLimit(2000))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := ps.Solve(context.Background(), ch)
	if !errors.Is(err, ErrNonceExhausted) {
		t.Fatalf("err = %v, want ErrNonceExhausted", err)
	}
	if stats.Attempts == 0 || stats.Attempts > 2100 {
		t.Fatalf("attempts = %d, want ≈2000", stats.Attempts)
	}
}
