package puzzle

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCountLeadingZeroBits(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want int
	}{
		{"empty", nil, 0},
		{"all_zero", []byte{0, 0, 0}, 24},
		{"msb_set", []byte{0x80}, 0},
		{"one_leading", []byte{0x40}, 1},
		{"seven_leading", []byte{0x01}, 7},
		{"byte_boundary", []byte{0x00, 0x80}, 8},
		{"cross_boundary", []byte{0x00, 0x01}, 15},
		{"two_zero_bytes", []byte{0x00, 0x00, 0xFF}, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountLeadingZeroBits(tt.in); got != tt.want {
				t.Errorf("CountLeadingZeroBits(%x) = %d, want %d", tt.in, got, tt.want)
			}
		})
	}
}

// Property: the count equals the position of the first set bit, for any
// byte string.
func TestCountLeadingZeroBitsProperty(t *testing.T) {
	f := func(b []byte) bool {
		got := CountLeadingZeroBits(b)
		// Recompute naively bit by bit.
		want := 0
		for _, by := range b {
			stop := false
			for bit := 7; bit >= 0; bit-- {
				if by&(1<<uint(bit)) != 0 {
					stop = true
					break
				}
				want++
			}
			if stop {
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedAttempts(t *testing.T) {
	if got := ExpectedAttempts(1); got != 2 {
		t.Errorf("ExpectedAttempts(1) = %v, want 2", got)
	}
	if got := ExpectedAttempts(15); got != 32768 {
		t.Errorf("ExpectedAttempts(15) = %v, want 32768", got)
	}
}

func TestExpectedSolveTime(t *testing.T) {
	tests := []struct {
		name string
		d    int
		rate float64
		want time.Duration
	}{
		{"one_hash_per_sec", 0, 1, time.Second},
		{"d10_at_1024", 10, 1024, time.Second},
		{"zero_rate_saturates", 10, 0, time.Duration(math.MaxInt64)},
		{"overflow_saturates", 64, 1e-300, time.Duration(math.MaxInt64)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpectedSolveTime(tt.d, tt.rate); got != tt.want {
				t.Errorf("ExpectedSolveTime(%d, %v) = %v, want %v", tt.d, tt.rate, got, tt.want)
			}
		})
	}
}

func TestChallengeExpiresAt(t *testing.T) {
	at := time.Date(2022, 3, 21, 12, 0, 0, 0, time.UTC)
	ch := Challenge{IssuedAt: at, TTL: time.Minute}
	if got := ch.ExpiresAt(); !got.Equal(at.Add(time.Minute)) {
		t.Fatalf("ExpiresAt() = %v", got)
	}
}

func TestCanonicalDistinguishesFields(t *testing.T) {
	base := Challenge{
		Version:    Version1,
		IssuedAt:   time.Unix(100, 0),
		TTL:        time.Minute,
		Difficulty: 4,
		Binding:    "10.0.0.1",
	}
	variants := map[string]Challenge{}
	v := base
	v.Difficulty = 5
	variants["difficulty"] = v
	v = base
	v.Binding = "10.0.0.2"
	variants["binding"] = v
	v = base
	v.Seed[0] = 1
	variants["seed"] = v
	v = base
	v.IssuedAt = time.Unix(101, 0)
	variants["issued_at"] = v
	v = base
	v.TTL = 2 * time.Minute
	variants["ttl"] = v

	baseC := string(base.canonical())
	for name, variant := range variants {
		if string(variant.canonical()) == baseC {
			t.Errorf("canonical() does not cover field %s", name)
		}
	}
}

// Property: for 32-bit nonces, Digest is stable and Meets agrees with a
// manual leading-zero check.
func TestMeetsMatchesDigest(t *testing.T) {
	ch := Challenge{
		Version:    Version1,
		IssuedAt:   time.Unix(42, 0),
		TTL:        time.Minute,
		Difficulty: 2,
		Binding:    "client",
	}
	f := func(nonce uint32) bool {
		d := ch.Digest(uint64(nonce))
		return ch.Meets(uint64(nonce)) == (CountLeadingZeroBits(d[:]) >= ch.Difficulty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The nonce encoding must be width-stable: a value ≤ MaxUint32 always hashes
// as 4 bytes regardless of which solver phase produced it.
func TestAppendNonceWidth(t *testing.T) {
	if got := len(appendNonce(nil, math.MaxUint32)); got != 4 {
		t.Errorf("appendNonce(MaxUint32) len = %d, want 4", got)
	}
	if got := len(appendNonce(nil, math.MaxUint32+1)); got != 8 {
		t.Errorf("appendNonce(MaxUint32+1) len = %d, want 8", got)
	}
}
