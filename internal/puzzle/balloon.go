package puzzle

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// The memory-hard backend is a self-contained balloon-hash variant
// (Boneh–Corrigan-Gibbs–Schechter): a buffer of `space` 32-byte blocks is
// filled sequentially from the preimage, then `time` rounds re-hash every
// block with its predecessor and balloonDelta data-dependent neighbours.
// The data-dependent indexing means the whole buffer must stay resident
// for the whole computation — the property that denies GPU/ASIC solvers
// the three-orders-of-magnitude discount they enjoy on plain SHA-256,
// because the cost is memory bandwidth, not compression-function
// throughput. Every primitive is crypto/sha256; no new dependencies.
//
// A solution to a d-difficult balloon challenge is a nonce such that
// balloon(canonical(challenge) ‖ nonce) has at least d leading zero bits
// — the same difficulty dial as hashcash, but each attempt costs
// space·(1+(delta+1)·time) hashes over a space·32-byte working set
// instead of one hash over 64 bytes.
const (
	// balloonBlockSize is the buffer block size (one SHA-256 digest).
	balloonBlockSize = sha256.Size

	// balloonDelta is the number of data-dependent neighbours mixed into
	// each block per round (the paper's δ=3).
	balloonDelta = 3

	// DefaultBalloonSpace and DefaultBalloonRounds are the production
	// defaults: 256 blocks × 32 B = 8 KiB working set, 2 mixing rounds,
	// ≈2300 hashes per attempt (≈2^11), so a d-difficult balloon
	// challenge prices like a (d+11)-difficult hashcash one on a CPU —
	// and far worse than that on hardware that discounts raw SHA-256.
	DefaultBalloonSpace  = 256
	DefaultBalloonRounds = 2

	// Parameter sanity bounds. Space and rounds ride inside the
	// HMAC-authenticated challenge, so a verifier only ever evaluates
	// parameters its own issuer signed; the bounds exist to keep a
	// misconfigured deployment from turning verification into a
	// self-inflicted memory DoS (2^16 blocks = 2 MiB per scratch).
	minBalloonSpace  = 2
	maxBalloonSpace  = 1 << 16
	minBalloonRounds = 1
	maxBalloonRounds = 64
)

// balloonScratch is the pooled working state of one balloon evaluation:
// the block buffer plus an input scratch for counter-prefixed hashing.
// Pooling it keeps repeated verifications allocation-free; the buffer
// grows to the largest space seen and stays there.
type balloonScratch struct {
	blocks []byte
	in     []byte
}

var balloonPool = sync.Pool{
	New: func() any {
		return &balloonScratch{
			blocks: make([]byte, DefaultBalloonSpace*balloonBlockSize),
			in:     make([]byte, 0, 8+2*balloonBlockSize+binaryFixedSizeV2+64),
		}
	},
}

// balloonDigest evaluates the balloon function over preimage with the
// given cost parameters. Out-of-range parameters are clamped to the
// sanity bounds (authenticated challenges never carry any, see above).
func balloonDigest(preimage []byte, space, rounds uint32) [sha256.Size]byte {
	if space < minBalloonSpace {
		space = minBalloonSpace
	} else if space > maxBalloonSpace {
		space = maxBalloonSpace
	}
	if rounds < minBalloonRounds {
		rounds = minBalloonRounds
	} else if rounds > maxBalloonRounds {
		rounds = maxBalloonRounds
	}

	s := balloonPool.Get().(*balloonScratch)
	need := int(space) * balloonBlockSize
	if cap(s.blocks) < need {
		s.blocks = make([]byte, need)
	}
	blocks := s.blocks[:need]
	var cnt uint64

	// hashInto writes H(le64(cnt++) ‖ a ‖ b) into dst. dst may alias a
	// or b: the input is staged through s.in before hashing.
	hashInto := func(dst, a, b []byte) {
		in := s.in[:0]
		in = binary.LittleEndian.AppendUint64(in, cnt)
		cnt++
		in = append(in, a...)
		in = append(in, b...)
		s.in = in
		sum := sha256.Sum256(in)
		copy(dst, sum[:])
	}

	block := func(m uint32) []byte {
		return blocks[m*balloonBlockSize : (m+1)*balloonBlockSize]
	}

	// Expand: fill the buffer sequentially from the preimage.
	hashInto(block(0), preimage, nil)
	for m := uint32(1); m < space; m++ {
		hashInto(block(m), block(m-1), nil)
	}

	// Mix: every round re-hashes each block with its predecessor, then
	// with balloonDelta neighbours chosen by the block's own current
	// bytes — the data-dependent step that forces residency.
	for r := uint32(0); r < rounds; r++ {
		for m := uint32(0); m < space; m++ {
			prev := block((m + space - 1) % space)
			hashInto(block(m), prev, block(m))
			for i := 0; i < balloonDelta; i++ {
				idx := uint32(binary.LittleEndian.Uint64(block(m)[i*8:]) % uint64(space))
				hashInto(block(m), block(m), block(idx))
			}
		}
	}

	var out [sha256.Size]byte
	copy(out[:], block(space-1))
	balloonPool.Put(s)
	return out
}
