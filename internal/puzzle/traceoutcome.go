package puzzle

import (
	"errors"

	"aipow/internal/obs"
)

// TraceOutcome maps a verification error onto the compact outcome codes
// trace records carry. The mapping lives here — next to the error
// taxonomy it classifies — so obs stays free of puzzle knowledge and a
// new sentinel cannot silently fall through to "other" without the test
// beside this file catching it.
//
// Order matters only for the replay pair: ErrFleetReplay wraps
// ErrReplayed, so it must be checked first.
func TraceOutcome(err error) obs.VerifyOutcome {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, ErrFleetReplay):
		return obs.OutcomeFleetReplay
	case errors.Is(err, ErrReplayed):
		return obs.OutcomeReplayed
	case errors.Is(err, ErrBadVersion):
		return obs.OutcomeBadVersion
	case errors.Is(err, ErrBadTag):
		return obs.OutcomeBadTag
	case errors.Is(err, ErrBindingMismatch):
		return obs.OutcomeBindingMismatch
	case errors.Is(err, ErrNotYetValid):
		return obs.OutcomeNotYetValid
	case errors.Is(err, ErrExpired):
		return obs.OutcomeExpired
	case errors.Is(err, ErrWrongSolution):
		return obs.OutcomeWrongSolution
	case errors.Is(err, ErrInvalidDifficulty):
		return obs.OutcomeInvalidDifficulty
	}
	return obs.OutcomeOther
}
