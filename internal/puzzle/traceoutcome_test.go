package puzzle

import (
	"errors"
	"fmt"
	"testing"

	"aipow/internal/obs"
)

func TestTraceOutcomeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want obs.VerifyOutcome
	}{
		{nil, obs.OutcomeOK},
		{fmt.Errorf("%w: %w", ErrVerify, ErrBadVersion), obs.OutcomeBadVersion},
		{fmt.Errorf("%w: %w", ErrVerify, ErrBadTag), obs.OutcomeBadTag},
		{fmt.Errorf("%w: %w", ErrVerify, ErrBindingMismatch), obs.OutcomeBindingMismatch},
		{fmt.Errorf("%w: %w", ErrVerify, ErrNotYetValid), obs.OutcomeNotYetValid},
		{fmt.Errorf("%w: %w", ErrVerify, ErrExpired), obs.OutcomeExpired},
		{fmt.Errorf("%w: %w: nonce 7", ErrVerify, ErrWrongSolution), obs.OutcomeWrongSolution},
		{fmt.Errorf("%w: %w", ErrVerify, ErrReplayed), obs.OutcomeReplayed},
		{fmt.Errorf("%w: %w", ErrVerify, ErrFleetReplay), obs.OutcomeFleetReplay},
		{fmt.Errorf("%w: %w", ErrVerify, ErrInvalidDifficulty), obs.OutcomeInvalidDifficulty},
		{errors.New("something else"), obs.OutcomeOther},
	}
	for _, tc := range cases {
		if got := TraceOutcome(tc.err); got != tc.want {
			t.Errorf("TraceOutcome(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestFleetReplayWrapsReplayed pins the compatibility contract: callers
// branching with errors.Is(err, ErrReplayed) must keep matching fleet
// catches.
func TestFleetReplayWrapsReplayed(t *testing.T) {
	err := fmt.Errorf("%w: %w", ErrVerify, ErrFleetReplay)
	if !errors.Is(err, ErrReplayed) {
		t.Error("ErrFleetReplay does not wrap ErrReplayed")
	}
	if !errors.Is(err, ErrVerify) {
		t.Error("fleet replay error does not wrap ErrVerify")
	}
}
