// Package puzzle implements the Proof-of-Work substrate of the framework:
// challenge issuance, client-side solving, and server-side verification.
//
// A challenge binds together a random seed (defeating pre-computation), the
// issue timestamp and a TTL (bounding solution lifetime), the required
// difficulty, and an opaque client binding (typically the client IP, as in
// the paper). The issuer authenticates all of that with an HMAC-SHA256 tag,
// so verification is stateless apart from an optional replay cache that
// enforces single use of each seed.
//
// A solution to a d-difficult challenge is a nonce such that
//
//	SHA-256(canonical(challenge) ‖ nonce)
//
// has at least d leading zero bits. The expected number of hash evaluations
// is 2^d, which is what makes difficulty an adaptive cost dial: the policy
// module chooses d per request from the client's reputation score.
package puzzle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	// Version1 is the original wire format: implicitly hashcash, no
	// backend byte. Tokens issued before backends existed verify
	// unchanged.
	Version1 = 1

	// Version2 is the backend-carrying wire format: the canonical bytes
	// gain a backend ID and the backend's cost parameters, all under the
	// HMAC. Version1 and Version2 use disjoint magic prefixes, so the
	// two formats live in disjoint HMAC domains — a v2 challenge
	// rewritten as v1 (or vice versa) fails authentication even before
	// the verifier's explicit version gate rejects it.
	Version2 = 2

	// SeedSize is the byte length of the anti-precomputation seed.
	SeedSize = 16

	// TagSize is the byte length of the HMAC-SHA256 authentication tag.
	TagSize = sha256.Size

	// MinDifficulty is the smallest difficulty the framework issues. The
	// paper's easiest policy starts at a 1-difficult puzzle.
	MinDifficulty = 1

	// MaxDifficulty is the hard upper bound on difficulty: a SHA-256 digest
	// has 256 bits, but anything beyond 64 leading zero bits is beyond
	// plausible client work, so the encoding caps there.
	MaxDifficulty = 64

	// DefaultTTL is how long an issued challenge stays valid unless the
	// issuer is configured otherwise. It must comfortably exceed the worst
	// solve time a policy can impose on a legitimate client.
	DefaultTTL = 2 * time.Minute

	// maxBindingLen bounds the client-binding string on the wire.
	maxBindingLen = 255

	// magic prefixes every Version1 canonical encoding so that tags and
	// hashes from this protocol cannot collide with other uses of the
	// same key.
	magic = "AIPoW/1\x00"

	// magic2 prefixes Version2 canonical encodings. Distinct from magic,
	// so the two wire versions authenticate under disjoint HMAC domains.
	magic2 = "AIPoW/2\x00"
)

// Typed failures returned by issuance and verification. Callers are expected
// to branch with errors.Is; all verification failures are also ErrVerify.
var (
	// ErrVerify is the umbrella error wrapped by every verification failure.
	ErrVerify = errors.New("puzzle: verification failed")

	// ErrBadVersion reports an unknown wire-format version.
	ErrBadVersion = errors.New("puzzle: unsupported version")

	// ErrInvalidDifficulty reports a difficulty outside the permitted range.
	ErrInvalidDifficulty = errors.New("puzzle: difficulty out of range")

	// ErrBadTag reports an HMAC authentication failure: the challenge was
	// not issued by this key or was tampered with in transit.
	ErrBadTag = errors.New("puzzle: challenge authentication failed")

	// ErrExpired reports a solution submitted after the challenge TTL.
	ErrExpired = errors.New("puzzle: challenge expired")

	// ErrNotYetValid reports a challenge whose issue time is in the future
	// beyond the allowed clock skew.
	ErrNotYetValid = errors.New("puzzle: challenge not yet valid")

	// ErrWrongSolution reports a nonce whose digest does not meet the
	// required difficulty.
	ErrWrongSolution = errors.New("puzzle: solution does not meet difficulty")

	// ErrReplayed reports a seed that was already redeemed.
	ErrReplayed = errors.New("puzzle: challenge already redeemed")

	// ErrFleetReplay reports a replay caught by the cluster's gossiped tag
	// filter rather than this node's local cache. It wraps ErrReplayed, so
	// errors.Is(err, ErrReplayed) matches both; branch on ErrFleetReplay
	// only to attribute the catch (tracing, per-plane counters).
	ErrFleetReplay = fmt.Errorf("%w (fleet filter)", ErrReplayed)

	// ErrBindingMismatch reports a solution presented by a client other
	// than the one the challenge was issued to.
	ErrBindingMismatch = errors.New("puzzle: client binding mismatch")

	// ErrNonceExhausted reports that the 32-bit nonce space was searched
	// without finding a solution. With d ≤ 22 the probability of this is
	// below 1e-9; it signals a mis-configured (too high) difficulty.
	ErrNonceExhausted = errors.New("puzzle: nonce space exhausted")

	// ErrBindingTooLong reports a client binding exceeding the wire limit.
	ErrBindingTooLong = errors.New("puzzle: binding exceeds 255 bytes")
)

// Challenge is one issued puzzle. The zero value is not a valid challenge;
// obtain one from an Issuer or by decoding a wire string.
type Challenge struct {
	// Version identifies the wire format (Version1 or Version2).
	Version uint8

	// Backend identifies the puzzle algorithm, carried on the wire by
	// Version2 tokens only. It is zero on Version1 challenges, which are
	// implicitly hashcash.
	Backend BackendID

	// Space and Rounds are the memory-hard cost parameters (balloon
	// backend; zero otherwise). They ride inside the authenticated
	// canonical bytes, so a verifier only evaluates parameters its
	// issuer signed.
	Space  uint32
	Rounds uint32

	// Seed is the unique random value that makes each challenge fresh.
	Seed [SeedSize]byte

	// IssuedAt is the issuer's clock reading at issue time, at nanosecond
	// granularity.
	IssuedAt time.Time

	// TTL is how long after IssuedAt the challenge may be redeemed.
	TTL time.Duration

	// Difficulty is the required number of leading zero bits, in
	// [MinDifficulty, MaxDifficulty].
	Difficulty int

	// Binding ties the challenge to a client identity (the paper uses the
	// client IP address). Verification rejects solutions presented under a
	// different binding.
	Binding string

	// Tag authenticates all fields above under the issuer's key.
	Tag [TagSize]byte
}

// ExpiresAt reports the instant after which the challenge is no longer
// redeemable.
func (c Challenge) ExpiresAt() time.Time { return c.IssuedAt.Add(c.TTL) }

// canonical renders every authenticated field into a fixed, unambiguous
// byte layout. It is both the HMAC input and the hash preimage prefix.
func (c Challenge) canonical() []byte {
	return c.appendCanonical(make([]byte, 0, binaryFixedSizeV2+len(c.Binding)))
}

// appendCanonical appends the canonical form to b and returns the extended
// slice; the hot paths pass pooled buffers to avoid per-call allocation.
// Version1 keeps its original byte layout exactly, so pre-backend tokens
// stay authentic; Version2 prepends the backend ID and cost parameters
// under a distinct magic.
func (c *Challenge) appendCanonical(b []byte) []byte {
	if c.Version >= Version2 {
		b = append(b, magic2...)
		b = append(b, c.Version)
		b = append(b, byte(c.Backend))
		b = binary.BigEndian.AppendUint32(b, c.Space)
		b = binary.BigEndian.AppendUint32(b, c.Rounds)
	} else {
		b = append(b, magic...)
		b = append(b, c.Version)
	}
	b = append(b, c.Seed[:]...)
	b = binary.BigEndian.AppendUint64(b, uint64(c.IssuedAt.UnixNano()))
	b = binary.BigEndian.AppendUint64(b, uint64(c.TTL))
	b = binary.BigEndian.AppendUint16(b, uint16(c.Difficulty))
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.Binding)))
	b = append(b, c.Binding...)
	return b
}

// Solution pairs a challenge with the nonce that solves it.
type Solution struct {
	Challenge Challenge

	// Nonce is the value appended to the preimage. The paper specifies a
	// 32-bit nonce; values above 2^32-1 only appear when a Solver is run
	// in extended mode.
	Nonce uint64
}

// appendNonce encodes the nonce exactly as hashed: 4 big-endian bytes for
// 32-bit values (the paper's "32-bit string"), 8 bytes for extended nonces.
func appendNonce(b []byte, nonce uint64) []byte {
	if nonce <= math.MaxUint32 {
		return binary.BigEndian.AppendUint32(b, uint32(nonce))
	}
	return binary.BigEndian.AppendUint64(b, nonce)
}

// Digest computes the digest a verifier checks for the given nonce: a
// plain SHA-256 of canonical‖nonce for hashcash challenges, the balloon
// function over the same preimage for the memory-hard backend.
func (c Challenge) Digest(nonce uint64) [sha256.Size]byte {
	pre := appendNonce(c.canonical(), nonce)
	if c.Version >= Version2 && c.Backend == BackendBalloon {
		return balloonDigest(pre, c.Space, c.Rounds)
	}
	return sha256.Sum256(pre)
}

// Meets reports whether nonce solves the challenge at its difficulty.
func (c Challenge) Meets(nonce uint64) bool {
	d := c.Digest(nonce)
	return CountLeadingZeroBits(d[:]) >= c.Difficulty
}

// CountLeadingZeroBits reports the number of consecutive zero bits at the
// start of b, reading bytes most-significant-bit first.
func CountLeadingZeroBits(b []byte) int {
	n := 0
	for _, by := range b {
		if by == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(by)
		break
	}
	return n
}

// ExpectedAttempts reports the expected number of hash evaluations to solve
// a d-difficult puzzle (2^d).
func ExpectedAttempts(d int) float64 { return math.Exp2(float64(d)) }

// ExpectedSolveTime reports the expected solve duration for a d-difficult
// puzzle at the given hash rate (hashes per second). It returns a very
// large value rather than overflowing when the rate is non-positive.
func ExpectedSolveTime(d int, hashRate float64) time.Duration {
	if hashRate <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := ExpectedAttempts(d) / hashRate
	if sec > float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// validateDifficulty rejects difficulties outside the protocol range.
func validateDifficulty(d int) error {
	if d < MinDifficulty || d > MaxDifficulty {
		return fmt.Errorf("%w: %d not in [%d, %d]", ErrInvalidDifficulty, d, MinDifficulty, MaxDifficulty)
	}
	return nil
}
