package puzzle

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func BenchmarkIssue(b *testing.B) {
	iss, err := NewIssuer(testKey)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iss.Issue("203.0.113.9", 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	iss, err := NewIssuer(testKey)
	if err != nil {
		b.Fatal(err)
	}
	ver, err := NewVerifier(testKey) // no replay cache: pure verify cost
	if err != nil {
		b.Fatal(err)
	}
	ch, err := iss.Issue("203.0.113.9", 8)
	if err != nil {
		b.Fatal(err)
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ver.Verify(sol, "203.0.113.9"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIssueBalloon(b *testing.B) {
	backend, err := NewBalloon(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	iss, err := NewIssuer(testKey, WithIssuerBackend(backend))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iss.Issue("203.0.113.9", 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyBalloon(b *testing.B) {
	backend, err := NewBalloon(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	iss, err := NewIssuer(testKey, WithIssuerBackend(backend))
	if err != nil {
		b.Fatal(err)
	}
	ver, err := NewVerifier(testKey, WithVerifierBackend(backend)) // no replay cache: pure verify cost
	if err != nil {
		b.Fatal(err)
	}
	ch, err := iss.Issue("203.0.113.9", 2)
	if err != nil {
		b.Fatal(err)
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ver.Verify(sol, "203.0.113.9"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	iss, err := NewIssuer(testKey)
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			solver := NewSolver()
			for i := 0; i < b.N; i++ {
				ch, err := iss.Issue("bench", d)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := solver.Solve(context.Background(), ch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChallengeMarshalText(b *testing.B) {
	iss, err := NewIssuer(testKey)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := iss.Issue("203.0.113.9", 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.MarshalText(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChallengeUnmarshalText(b *testing.B) {
	iss, err := NewIssuer(testKey)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := iss.Issue("203.0.113.9", 12)
	if err != nil {
		b.Fatal(err)
	}
	txt, err := ch.MarshalText()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got Challenge
		if err := got.UnmarshalText(txt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayCacheRemember(b *testing.B) {
	c := NewReplayCache(1<<16, nil)
	exp := time.Now().Add(time.Hour)
	var s [SeedSize]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the seed so every insert is fresh.
		s[0], s[1], s[2], s[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		c.Remember(s, exp)
	}
}
