package puzzle

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// binaryFixedSize is the length of a Version1 challenge's binary
// encoding, excluding the variable-length binding; binaryFixedSizeV2 the
// same for Version2, which adds the backend ID and cost parameters.
const (
	binaryFixedSize   = len(magic) + 1 + SeedSize + 8 + 8 + 2 + 2
	binaryFixedSizeV2 = len(magic2) + 1 + 1 + 4 + 4 + SeedSize + 8 + 8 + 2 + 2
)

// MarshalBinary encodes the challenge as canonical bytes followed by the
// tag. It never fails for challenges produced by an Issuer.
func (c Challenge) MarshalBinary() ([]byte, error) {
	if len(c.Binding) > maxBindingLen {
		return nil, ErrBindingTooLong
	}
	return append(c.canonical(), c.Tag[:]...), nil
}

// UnmarshalBinary decodes a challenge previously encoded by MarshalBinary,
// sniffing the wire version from the magic prefix. It validates structure
// only; authenticity is the Verifier's job.
func (c *Challenge) UnmarshalBinary(data []byte) error {
	if len(data) < binaryFixedSize+TagSize {
		return fmt.Errorf("puzzle: truncated challenge (%d bytes)", len(data))
	}
	fixed := binaryFixedSize
	var off int
	switch {
	case string(data[:len(magic)]) == magic:
		off = len(magic)
		c.Version = data[off]
		off++
		// Version1 carries no backend fields; clear any stale ones so a
		// reused struct decodes to exactly what was on the wire.
		c.Backend, c.Space, c.Rounds = 0, 0, 0
	case string(data[:len(magic2)]) == magic2:
		fixed = binaryFixedSizeV2
		if len(data) < fixed+TagSize {
			return fmt.Errorf("puzzle: truncated v2 challenge (%d bytes)", len(data))
		}
		off = len(magic2)
		c.Version = data[off]
		off++
		c.Backend = BackendID(data[off])
		off++
		if c.Backend == 0 {
			return fmt.Errorf("puzzle: zero backend ID in v2 challenge")
		}
		c.Space = binary.BigEndian.Uint32(data[off:])
		off += 4
		c.Rounds = binary.BigEndian.Uint32(data[off:])
		off += 4
	default:
		return fmt.Errorf("puzzle: bad magic")
	}
	copy(c.Seed[:], data[off:off+SeedSize])
	off += SeedSize
	c.IssuedAt = time.Unix(0, int64(binary.BigEndian.Uint64(data[off:]))).UTC()
	off += 8
	c.TTL = time.Duration(binary.BigEndian.Uint64(data[off:]))
	off += 8
	c.Difficulty = int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	bindLen := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if bindLen > maxBindingLen {
		return ErrBindingTooLong
	}
	if len(data) != fixed+bindLen+TagSize {
		return fmt.Errorf("puzzle: challenge length %d does not match binding length %d",
			len(data), bindLen)
	}
	c.Binding = string(data[off : off+bindLen])
	off += bindLen
	copy(c.Tag[:], data[off:off+TagSize])
	return nil
}

// MarshalText encodes the challenge as a single base64url token suitable
// for an HTTP header.
func (c Challenge) MarshalText() ([]byte, error) {
	raw, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, base64.RawURLEncoding.EncodedLen(len(raw)))
	base64.RawURLEncoding.Encode(out, raw)
	return out, nil
}

// UnmarshalText decodes a base64url challenge token.
func (c *Challenge) UnmarshalText(text []byte) error {
	raw := make([]byte, base64.RawURLEncoding.DecodedLen(len(text)))
	n, err := base64.RawURLEncoding.Decode(raw, text)
	if err != nil {
		return fmt.Errorf("puzzle: decode challenge token: %w", err)
	}
	return c.UnmarshalBinary(raw[:n])
}

// String renders a compact human-readable description (not the wire form).
func (c Challenge) String() string {
	if c.Version >= Version2 {
		return fmt.Sprintf("challenge{v%d %s d=%d binding=%q issued=%s ttl=%s}",
			c.Version, c.Backend, c.Difficulty, c.Binding,
			c.IssuedAt.Format(time.RFC3339Nano), c.TTL)
	}
	return fmt.Sprintf("challenge{v%d d=%d binding=%q issued=%s ttl=%s}",
		c.Version, c.Difficulty, c.Binding,
		c.IssuedAt.Format(time.RFC3339Nano), c.TTL)
}

// MarshalText encodes a solution as "<challenge-token>.<nonce-hex>".
func (s Solution) MarshalText() ([]byte, error) {
	cht, err := s.Challenge.MarshalText()
	if err != nil {
		return nil, err
	}
	return []byte(string(cht) + "." + strconv.FormatUint(s.Nonce, 16)), nil
}

// UnmarshalText decodes a solution encoded by MarshalText.
func (s *Solution) UnmarshalText(text []byte) error {
	str := string(text)
	dot := strings.LastIndexByte(str, '.')
	if dot < 0 {
		return fmt.Errorf("puzzle: solution token missing nonce separator")
	}
	if err := s.Challenge.UnmarshalText([]byte(str[:dot])); err != nil {
		return err
	}
	nonce, err := strconv.ParseUint(str[dot+1:], 16, 64)
	if err != nil {
		return fmt.Errorf("puzzle: parse solution nonce: %w", err)
	}
	s.Nonce = nonce
	return nil
}
