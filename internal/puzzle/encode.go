package puzzle

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// binarySize is the length of a Version1 challenge's binary encoding,
// excluding the variable-length binding.
const binaryFixedSize = len(magic) + 1 + SeedSize + 8 + 8 + 2 + 2

// MarshalBinary encodes the challenge as canonical bytes followed by the
// tag. It never fails for challenges produced by an Issuer.
func (c Challenge) MarshalBinary() ([]byte, error) {
	if len(c.Binding) > maxBindingLen {
		return nil, ErrBindingTooLong
	}
	return append(c.canonical(), c.Tag[:]...), nil
}

// UnmarshalBinary decodes a challenge previously encoded by MarshalBinary.
// It validates structure only; authenticity is the Verifier's job.
func (c *Challenge) UnmarshalBinary(data []byte) error {
	if len(data) < binaryFixedSize+TagSize {
		return fmt.Errorf("puzzle: truncated challenge (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return fmt.Errorf("puzzle: bad magic")
	}
	off := len(magic)
	c.Version = data[off]
	off++
	copy(c.Seed[:], data[off:off+SeedSize])
	off += SeedSize
	c.IssuedAt = time.Unix(0, int64(binary.BigEndian.Uint64(data[off:]))).UTC()
	off += 8
	c.TTL = time.Duration(binary.BigEndian.Uint64(data[off:]))
	off += 8
	c.Difficulty = int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	bindLen := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if bindLen > maxBindingLen {
		return ErrBindingTooLong
	}
	if len(data) != binaryFixedSize+bindLen+TagSize {
		return fmt.Errorf("puzzle: challenge length %d does not match binding length %d",
			len(data), bindLen)
	}
	c.Binding = string(data[off : off+bindLen])
	off += bindLen
	copy(c.Tag[:], data[off:off+TagSize])
	return nil
}

// MarshalText encodes the challenge as a single base64url token suitable
// for an HTTP header.
func (c Challenge) MarshalText() ([]byte, error) {
	raw, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, base64.RawURLEncoding.EncodedLen(len(raw)))
	base64.RawURLEncoding.Encode(out, raw)
	return out, nil
}

// UnmarshalText decodes a base64url challenge token.
func (c *Challenge) UnmarshalText(text []byte) error {
	raw := make([]byte, base64.RawURLEncoding.DecodedLen(len(text)))
	n, err := base64.RawURLEncoding.Decode(raw, text)
	if err != nil {
		return fmt.Errorf("puzzle: decode challenge token: %w", err)
	}
	return c.UnmarshalBinary(raw[:n])
}

// String renders a compact human-readable description (not the wire form).
func (c Challenge) String() string {
	return fmt.Sprintf("challenge{v%d d=%d binding=%q issued=%s ttl=%s}",
		c.Version, c.Difficulty, c.Binding,
		c.IssuedAt.Format(time.RFC3339Nano), c.TTL)
}

// MarshalText encodes a solution as "<challenge-token>.<nonce-hex>".
func (s Solution) MarshalText() ([]byte, error) {
	cht, err := s.Challenge.MarshalText()
	if err != nil {
		return nil, err
	}
	return []byte(string(cht) + "." + strconv.FormatUint(s.Nonce, 16)), nil
}

// UnmarshalText decodes a solution encoded by MarshalText.
func (s *Solution) UnmarshalText(text []byte) error {
	str := string(text)
	dot := strings.LastIndexByte(str, '.')
	if dot < 0 {
		return fmt.Errorf("puzzle: solution token missing nonce separator")
	}
	if err := s.Challenge.UnmarshalText([]byte(str[:dot])); err != nil {
		return err
	}
	nonce, err := strconv.ParseUint(str[dot+1:], 16, 64)
	if err != nil {
		return fmt.Errorf("puzzle: parse solution nonce: %w", err)
	}
	s.Nonce = nonce
	return nil
}
