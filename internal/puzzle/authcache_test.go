package puzzle

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// authCachePair returns an issuer and verifier sharing one AuthCache, the
// wiring core.Framework uses in-process.
func authCachePair(t *testing.T, opts ...IssuerOption) (*Issuer, *Verifier, *AuthCache) {
	t.Helper()
	key := []byte("0123456789abcdef0123456789abcdef")
	cache := NewAuthCache()
	iss, err := NewIssuer(key, append([]IssuerOption{WithIssuerAuthCache(cache)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := NewVerifier(key, WithVerifierAuthCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	return iss, ver, cache
}

// TestAuthCacheHitVerifies pins the happy path: an issued challenge's
// solution verifies through the shared cache (the HMAC-free path), with
// the same outcome the uncached verifier produces.
func TestAuthCacheHitVerifies(t *testing.T) {
	iss, ver, cache := authCachePair(t)
	ch, err := iss.Issue("203.0.113.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cache.match(ch.appendCanonical(nil), &ch.Tag, &ch.Seed, ch.Backend) {
		t.Fatal("issued challenge not published into the cache")
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, "203.0.113.1"); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestAuthCacheTamperedSiblingRejected is the security property: a forged
// challenge whose seed points at a slot holding its authentic sibling must
// still be rejected — the cache matches whole canonicals, and a miss falls
// back to the full HMAC check, which a forgery cannot pass.
func TestAuthCacheTamperedSiblingRejected(t *testing.T) {
	iss, ver, _ := authCachePair(t)
	ch, err := iss.Issue("203.0.113.2", 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}

	tamper := []struct {
		name string
		mut  func(*Solution)
	}{
		// Same seed — so the forgery lands on the authentic entry's slot —
		// with one field the attacker would like to rewrite.
		{"difficulty", func(s *Solution) { s.Challenge.Difficulty = 1 }},
		{"ttl", func(s *Solution) { s.Challenge.TTL *= 100 }},
		{"binding", func(s *Solution) { s.Challenge.Binding = "198.51.100.9" }},
		{"tag", func(s *Solution) { s.Challenge.Tag[3] ^= 0x01 }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			forged := sol
			tc.mut(&forged)
			binding := forged.Challenge.Binding
			if err := ver.Verify(forged, binding); !errors.Is(err, ErrBadTag) {
				t.Errorf("forged %s verified: err=%v, want ErrBadTag", tc.name, err)
			}
		})
	}
	// The authentic solution still passes after the forgery attempts.
	if err := ver.Verify(sol, "203.0.113.2"); err != nil {
		t.Fatalf("authentic solution rejected after tamper probes: %v", err)
	}
}

// TestAuthCacheColdFallback pins the miss path: a verifier whose cache
// never saw the challenge (cold cache, evicted slot, separate process)
// authenticates through the full HMAC check with identical outcomes.
func TestAuthCacheColdFallback(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	iss, err := NewIssuer(key) // no cache: nothing published
	if err != nil {
		t.Fatal(err)
	}
	ver, err := NewVerifier(key, WithVerifierAuthCache(NewAuthCache()))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := iss.Issue("203.0.113.3", 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, "203.0.113.3"); err != nil {
		t.Fatalf("cold-cache Verify: %v", err)
	}
	forged := sol
	forged.Challenge.Tag[0] ^= 0xFF
	if err := ver.Verify(forged, "203.0.113.3"); !errors.Is(err, ErrBadTag) {
		t.Errorf("cold-cache forgery: err=%v, want ErrBadTag", err)
	}
}

// TestAuthCacheVerifyRefreshes pins the steady-state property the hot
// path's economics depend on: a successful full verify re-publishes the
// entry, so a challenge that survived eviction repopulates its slot.
func TestAuthCacheVerifyRefreshes(t *testing.T) {
	iss, ver, cache := authCachePair(t)
	ch, err := iss.Issue("203.0.113.4", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Evict by storing junk in the challenge's slot.
	junk := []byte("not the canonical")
	var junkTag [TagSize]byte
	cache.store(junk, &junkTag, &ch.Seed, ch.Backend)
	canonical := ch.appendCanonical(nil)
	if cache.match(canonical, &ch.Tag, &ch.Seed, ch.Backend) {
		t.Fatal("entry still cached after eviction overwrite")
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, "203.0.113.4"); err != nil {
		t.Fatalf("Verify after eviction: %v", err)
	}
	if !cache.match(canonical, &ch.Tag, &ch.Seed, ch.Backend) {
		t.Error("successful verify did not refresh the evicted entry")
	}
}

// TestAuthCacheLongBindingSkipped pins the inline-buffer bound: a
// canonical too long for a slot is never stored, and verification still
// works through the fallback.
func TestAuthCacheLongBindingSkipped(t *testing.T) {
	iss, ver, cache := authCachePair(t)
	long := strings.Repeat("x", 120) // canonical exceeds authCacheMaxCanonical
	ch, err := iss.Issue(long, 1)
	if err != nil {
		t.Fatal(err)
	}
	canonical := ch.appendCanonical(nil)
	if len(canonical) <= authCacheMaxCanonical {
		t.Fatalf("test binding too short: canonical is %d bytes", len(canonical))
	}
	if cache.match(canonical, &ch.Tag, &ch.Seed, ch.Backend) {
		t.Error("oversized canonical entered the cache")
	}
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Verify(sol, long); err != nil {
		t.Fatalf("Verify with oversized canonical: %v", err)
	}
}

// TestAuthCacheSize pins NewAuthCacheSize's sizing contract: rounding up
// to a power of two, clamping at both ends, and the default constructor's
// equivalence to the default size.
func TestAuthCacheSize(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, authCacheMinSlots},       // below the floor clamps up
		{-5, authCacheMinSlots},      // negative too
		{64, 64},                     // exact power of two kept
		{65, 128},                    // rounded up, not down
		{3000, 4096},                 // typical size-up
		{1 << 23, authCacheMaxSlots}, // ceiling clamp
	} {
		if got := NewAuthCacheSize(tc.in).Slots(); got != tc.want {
			t.Errorf("NewAuthCacheSize(%d).Slots() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewAuthCache().Slots(); got != authCacheSlots {
		t.Errorf("NewAuthCache().Slots() = %d, want %d", got, authCacheSlots)
	}
}

// TestAuthCacheLargeIndexSpread pins the 4-seed-byte slot index: with more
// than 64Ki slots, entries must spread beyond the 2^16 slots two seed
// bytes could address, and a sized-up cache still hits on its entries.
func TestAuthCacheLargeIndexSpread(t *testing.T) {
	cache := NewAuthCacheSize(1 << 18)
	key := []byte("0123456789abcdef0123456789abcdef")
	iss, err := NewIssuer(key, WithIssuerAuthCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[uint32]bool)
	for i := 0; i < 512; i++ {
		ch, err := iss.Issue("203.0.113.9", 1)
		if err != nil {
			t.Fatal(err)
		}
		if !cache.match(ch.appendCanonical(nil), &ch.Tag, &ch.Seed, ch.Backend) {
			t.Fatalf("issue %d missing from sized-up cache", i)
		}
		w := uint32(ch.Seed[0]) | uint32(ch.Seed[1])<<8 | uint32(ch.Seed[2])<<16 | uint32(ch.Seed[3])<<24
		used[(w^uint32(ch.Backend)*0x9E37)&cache.mask] = true
	}
	// 512 crypto/rand seeds across 2^18 slots collide rarely; any use of
	// only the low 16 bits would still pass here, so check the high bits
	// actually participate: some index must exceed 2^16-1.
	high := false
	for idx := range used {
		if idx > 0xFFFF {
			high = true
			break
		}
	}
	if !high {
		t.Error("no slot index above 2^16 — high seed bytes not mixed into the index")
	}
}
