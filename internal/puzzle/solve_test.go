package puzzle

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// solveOrDie solves ch with a default solver or fails the test.
func solveOrDie(t *testing.T, ch Challenge) Solution {
	t.Helper()
	sol, _, err := NewSolver().Solve(context.Background(), ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveFindsValidNonce(t *testing.T) {
	iss := newTestIssuer(t)
	for _, d := range []int{1, 4, 8, 12} {
		ch, err := iss.Issue("client", d)
		if err != nil {
			t.Fatal(err)
		}
		sol, stats, err := NewSolver().Solve(context.Background(), ch)
		if err != nil {
			t.Fatalf("Solve(d=%d): %v", d, err)
		}
		if !ch.Meets(sol.Nonce) {
			t.Fatalf("d=%d: returned nonce %d does not meet difficulty", d, sol.Nonce)
		}
		if stats.Attempts == 0 {
			t.Fatalf("d=%d: zero attempts reported", d)
		}
		if stats.Attempts != sol.Nonce+1 {
			t.Fatalf("d=%d: attempts %d != nonce+1 %d (sequential search)", d, stats.Attempts, sol.Nonce+1)
		}
	}
}

func TestSolveRespectsContextCancellation(t *testing.T) {
	iss := newTestIssuer(t, WithIssuerMaxDifficulty(32))
	ch, err := iss.Issue("client", 32) // ~4e9 expected attempts: never finishes here
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := NewSolver().Solve(ctx, ch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Attempts > ctxCheckInterval {
		t.Fatalf("solver did %d attempts after cancellation", stats.Attempts)
	}
}

func TestSolveNonceLimit(t *testing.T) {
	iss := newTestIssuer(t, WithIssuerMaxDifficulty(32))
	ch, err := iss.Issue("client", 30)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := NewSolver(WithNonceLimit(1000)).Solve(context.Background(), ch)
	if !errors.Is(err, ErrNonceExhausted) {
		t.Fatalf("err = %v, want ErrNonceExhausted", err)
	}
	if stats.Attempts != 1000 {
		t.Fatalf("attempts = %d, want exactly 1000", stats.Attempts)
	}
}

func TestSolveNonceLimitStillSolvesEasy(t *testing.T) {
	iss := newTestIssuer(t)
	ch, err := iss.Issue("client", 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := NewSolver(WithNonceLimit(1<<16)).Solve(context.Background(), ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !ch.Meets(sol.Nonce) {
		t.Fatal("solution does not meet difficulty")
	}
}

// Property: issue → solve → verify round-trips cleanly for random small
// difficulties and bindings.
func TestSolveVerifyRoundTripProperty(t *testing.T) {
	iss := newTestIssuer(t)
	ver, err := NewVerifier(testKey)
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolver()
	rng := rand.New(rand.NewPCG(11, 13))
	f := func(bindingSeed uint16) bool {
		d := 1 + int(rng.Uint32()%8)
		binding := "ip-" + string(rune('a'+bindingSeed%26))
		ch, err := iss.Issue(binding, d)
		if err != nil {
			return false
		}
		sol, _, err := solver.Solve(context.Background(), ch)
		if err != nil {
			return false
		}
		return ver.Verify(sol, binding) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
