// Package feedback closes the framework's defense loop: it estimates live
// traffic signals from the serving pipeline's own telemetry and drives
// automatic policy hot-swaps through the same RCU path an operator uses.
//
// The paper's framing is that policies react to observed client behavior
// and server load; until now every reconfiguration was operator-initiated
// (spec apply, SIGHUP). This package supplies the missing half:
//
//   - a signal plane (Sampler): lock-cheap windowed estimators — an EWMA
//     request rate, sliding-window ratios, a per-pipeline difficulty
//     distribution with quantiles, and a false-positive proxy (the
//     fraction of hard challenges that get solved: misscored legitimate
//     clients dutifully solve expensive puzzles, bots overwhelmingly
//     abandon them) — fed by polling the pipeline's cumulative atomic
//     counters once per step, so the Decide/Verify hot path pays nothing;
//
//   - a controller (Controller): a deterministic-steppable escalation
//     ladder compiled from declarative escalate(...) rules in the shared
//     component-spec syntax, with hysteresis (hold), activation delays
//     (after), condition gates (unless), and bounded one-level-per-step
//     de-escalation, installing policies through an injected Target.
//
// Everything is clock-injected and caller-stepped: a server drives
// MaybeStep from a ticker on wall time, the simulation engine drives Step
// at tick boundaries on virtual time, and equal inputs produce equal
// decisions — which is what lets CI byte-compare adaptive scenario runs.
package feedback

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"aipow/internal/metrics"
	"aipow/internal/puzzle"
)

// Source is what the signal plane samples once per controller step: a
// serving pipeline's cumulative counters. core.Framework implements it;
// the simulation engine wraps one to fold modeled verification outcomes
// in.
type Source interface {
	// StatsInto adds cumulative counter values into dst, overwriting
	// same-named keys. The sampler reads "issued", "verified", "rejected",
	// "bypassed", and "score_errors".
	StatsInto(dst map[string]float64)

	// DifficultyProfileInto copies cumulative per-difficulty issue and
	// verify counts (index = difficulty) into the destination slices.
	DifficultyProfileInto(issued, verified []uint64)
}

// Signal names a Condition can reference.
const (
	// SignalRate is the EWMA decision rate (issued + bypassed) in
	// decisions per second.
	SignalRate = "rate"

	// SignalRateP90 is the 90th percentile of per-step decision rates over
	// the sliding window — a burst detector that outlives pulse gaps.
	SignalRateP90 = "rate_p90"

	// SignalLoad is SignalRate normalized by the configured capacity,
	// clamped to [0, 1]. It doubles as the policy.LoadFunc feed.
	SignalLoad = "load"

	// SignalVerifyFailRate is rejected / (rejected + verified) over the
	// sliding window.
	SignalVerifyFailRate = "verify_fail_rate"

	// SignalBypassFrac is the bypassed fraction of decisions over the
	// window.
	SignalBypassFrac = "bypass_frac"

	// SignalScoreErrorRate is the scorer-failure fraction of decisions
	// over the window.
	SignalScoreErrorRate = "score_error_rate"

	// SignalMeanDifficulty is the issue-weighted mean difficulty over the
	// window.
	SignalMeanDifficulty = "mean_difficulty"

	// SignalDiffP90 is the 90th percentile of the windowed per-difficulty
	// issue distribution.
	SignalDiffP90 = "diff_p90"

	// SignalHardSolveFrac is the false-positive proxy: the fraction of
	// hard challenges (difficulty ≥ the configured threshold) issued in
	// the window that were solved and verified. Misscored legitimate
	// clients solve the expensive puzzles they are handed; rational bots
	// abandon them — so a high value while volume spikes says the hard
	// tail is landing on real users, and escalation should be gated.
	SignalHardSolveFrac = "hard_solve_frac"
)

// signalNames lists every known signal, in documentation order.
var signalNames = []string{
	SignalRate, SignalRateP90, SignalLoad, SignalVerifyFailRate,
	SignalBypassFrac, SignalScoreErrorRate, SignalMeanDifficulty,
	SignalDiffP90, SignalHardSolveFrac,
}

// SignalNames lists the known signal names, in documentation order.
func SignalNames() []string { return append([]string(nil), signalNames...) }

// KnownSignal reports whether name is a valid signal reference.
func KnownSignal(name string) bool {
	for _, s := range signalNames {
		if s == name {
			return true
		}
	}
	return false
}

// Signals is one step's computed signal values.
type Signals struct {
	Rate           float64
	RateP90        float64
	Load           float64
	VerifyFailRate float64
	BypassFrac     float64
	ScoreErrorRate float64
	MeanDifficulty float64
	DiffP90        float64
	HardSolveFrac  float64
}

// Value reports the named signal's value and whether the name is known.
func (s Signals) Value(name string) (float64, bool) {
	switch name {
	case SignalRate:
		return s.Rate, true
	case SignalRateP90:
		return s.RateP90, true
	case SignalLoad:
		return s.Load, true
	case SignalVerifyFailRate:
		return s.VerifyFailRate, true
	case SignalBypassFrac:
		return s.BypassFrac, true
	case SignalScoreErrorRate:
		return s.ScoreErrorRate, true
	case SignalMeanDifficulty:
		return s.MeanDifficulty, true
	case SignalDiffP90:
		return s.DiffP90, true
	case SignalHardSolveFrac:
		return s.HardSolveFrac, true
	}
	return 0, false
}

// Sampler defaults.
const (
	// DefaultWindow is the sliding-window length in steps.
	DefaultWindow = 10

	// DefaultHardDifficulty is the threshold at or above which a challenge
	// counts as "hard" for the false-positive proxy.
	DefaultHardDifficulty = 12

	// DefaultAlpha is the EWMA weight of the rate estimator.
	DefaultAlpha = 0.3
)

// SamplerConfig shapes a Sampler.
type SamplerConfig struct {
	// Capacity is the decision rate (decisions/s) treated as full load for
	// the load signal; 0 pins load to 0 (no capacity declared).
	Capacity float64

	// HardDifficulty marks challenges at or above it as "hard" for the
	// false-positive proxy (0 = DefaultHardDifficulty).
	HardDifficulty int

	// Window is the sliding-window length in steps (0 = DefaultWindow).
	Window int

	// Alpha is the EWMA weight of the rate estimator (0 = DefaultAlpha).
	Alpha float64
}

// withDefaults resolves zero fields.
func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.HardDifficulty == 0 {
		c.HardDifficulty = DefaultHardDifficulty
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	return c
}

// validate rejects malformed configurations.
func (c SamplerConfig) validate() error {
	switch {
	case c.Capacity < 0:
		return fmt.Errorf("feedback: negative capacity %v", c.Capacity)
	case c.HardDifficulty < 0 || c.HardDifficulty > puzzle.MaxDifficulty:
		return fmt.Errorf("feedback: hard difficulty %d outside [0, %d]", c.HardDifficulty, puzzle.MaxDifficulty)
	case c.Window < 0:
		return fmt.Errorf("feedback: negative window %d", c.Window)
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("feedback: EWMA alpha %v outside (0, 1]", c.Alpha)
	}
	return nil
}

// snapshot is one step's cumulative counter reading.
type snapshot struct {
	at time.Time

	issued, verified, rejected, bypassed, scoreErrs float64

	diffIssued   [puzzle.MaxDifficulty + 1]uint64
	diffVerified [puzzle.MaxDifficulty + 1]uint64
}

// decisions reports the cumulative decision count (challenged + bypassed).
func (s *snapshot) decisions() float64 { return s.issued + s.bypassed }

// Sampler is the signal plane: it polls a Source's cumulative counters
// once per step into a ring of snapshots and derives windowed signal
// estimates from the deltas. Stepping is cheap (one counter scrape, no
// steady-state allocations) and everything the hot path might read —
// Load, the last Signals — is lock-free.
//
// Step must be called from one goroutine at a time (the controller's);
// Load and Signals are safe from any goroutine.
type Sampler struct {
	cfg SamplerConfig

	mu      sync.Mutex
	src     Source
	stats   map[string]float64 // reused scrape map
	ring    []snapshot         // Window slots; newest diffs against the slot it replaces
	next    int
	n       int
	rate    *metrics.EWMA
	rateWin *metrics.Window

	// last published signals, one atomic word each so concurrent readers
	// (stats scrapes, the load-adaptive policy on the serving path) never
	// contend with Step.
	sig [numSignalSlots]atomic.Uint64
}

// Slot indices into Sampler.sig — the single source tying Step's writes
// to Load/Signals' reads.
const (
	slotRate = iota
	slotRateP90
	slotLoad
	slotVerifyFailRate
	slotBypassFrac
	slotScoreErrorRate
	slotMeanDifficulty
	slotDiffP90
	slotHardSolveFrac
	numSignalSlots
)

// NewSampler returns a sampler for the given configuration. The source is
// attached later with Bind — the control plane compiles policies (which
// may capture the sampler's Load) before the framework they serve exists.
func NewSampler(cfg SamplerConfig) (*Sampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rate, err := metrics.NewEWMA(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	rateWin, err := metrics.NewWindow(cfg.Window)
	if err != nil {
		return nil, err
	}
	return &Sampler{
		cfg:   cfg,
		stats: make(map[string]float64, 8),
		// Window ring slots: the newest snapshot is diffed against the one
		// taken Window steps earlier (the slot it is about to replace), so
		// windowed deltas span exactly Window steps once warm.
		ring:    make([]snapshot, cfg.Window),
		rate:    rate,
		rateWin: rateWin,
	}, nil
}

// Bind attaches the counter source the sampler polls. Steps before Bind
// produce zero signals.
func (s *Sampler) Bind(src Source) {
	s.mu.Lock()
	s.src = src
	s.mu.Unlock()
}

// Load reports the current load estimate in [0, 1] — the long-promised
// policy.LoadFunc feed for load-adaptive policies, wired from the signal
// plane. It is a single atomic read, safe on the serving hot path.
func (s *Sampler) Load() float64 { return s.get(slotLoad) }

// Signals reports the last computed signal values.
func (s *Sampler) Signals() Signals {
	return Signals{
		Rate:           s.get(slotRate),
		RateP90:        s.get(slotRateP90),
		Load:           s.get(slotLoad),
		VerifyFailRate: s.get(slotVerifyFailRate),
		BypassFrac:     s.get(slotBypassFrac),
		ScoreErrorRate: s.get(slotScoreErrorRate),
		MeanDifficulty: s.get(slotMeanDifficulty),
		DiffP90:        s.get(slotDiffP90),
		HardSolveFrac:  s.get(slotHardSolveFrac),
	}
}

// Step polls the source and recomputes every signal as of now, returning
// the fresh values.
func (s *Sampler) Step(now time.Time) Signals {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.src == nil {
		return Signals{}
	}

	// The slot about to be written is the one rotating out when the ring
	// is full, so copy the snapshots still needed — the oldest (window
	// delta) and the previous (instantaneous rate) — before overwriting.
	ringLen := len(s.ring)
	var oldest, prevCopy snapshot
	var prev *snapshot
	if s.n > 0 {
		oldest = s.ring[(s.next-s.n+ringLen)%ringLen]
		prevCopy = s.ring[(s.next-1+ringLen)%ringLen]
		prev = &prevCopy
	}

	cur := &s.ring[s.next]
	clear(s.stats)
	s.src.StatsInto(s.stats)
	cur.at = now
	cur.issued = s.stats["issued"]
	cur.verified = s.stats["verified"]
	cur.rejected = s.stats["rejected"]
	cur.bypassed = s.stats["bypassed"]
	cur.scoreErrs = s.stats["score_errors"]
	s.src.DifficultyProfileInto(cur.diffIssued[:], cur.diffVerified[:])

	// Instantaneous decision rate over the last step feeds the EWMA and
	// the windowed quantile series.
	if prev != nil {
		if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
			inst := (cur.decisions() - prev.decisions()) / dt
			s.rate.Observe(inst)
			s.rateWin.Push(inst)
		}
	}

	sig := s.compute(cur, &oldest, s.n > 0)
	s.next = (s.next + 1) % ringLen
	if s.n < ringLen {
		s.n++
	}

	s.put(slotRate, sig.Rate)
	s.put(slotRateP90, sig.RateP90)
	s.put(slotLoad, sig.Load)
	s.put(slotVerifyFailRate, sig.VerifyFailRate)
	s.put(slotBypassFrac, sig.BypassFrac)
	s.put(slotScoreErrorRate, sig.ScoreErrorRate)
	s.put(slotMeanDifficulty, sig.MeanDifficulty)
	s.put(slotDiffP90, sig.DiffP90)
	s.put(slotHardSolveFrac, sig.HardSolveFrac)
	return sig
}

// compute derives the signal set from the newest snapshot against the
// oldest held one (the sliding-window delta).
func (s *Sampler) compute(cur, oldest *snapshot, haveWindow bool) Signals {
	sig := Signals{
		Rate:    s.rate.Value(),
		RateP90: s.rateWin.Quantile(0.9),
	}
	if s.cfg.Capacity > 0 {
		l := sig.Rate / s.cfg.Capacity
		if l > 1 {
			l = 1
		}
		if l < 0 || math.IsNaN(l) {
			l = 0
		}
		sig.Load = l
	}
	if !haveWindow {
		return sig
	}

	dVerified := cur.verified - oldest.verified
	dRejected := cur.rejected - oldest.rejected
	dBypassed := cur.bypassed - oldest.bypassed
	dScoreErr := cur.scoreErrs - oldest.scoreErrs
	dDecisions := cur.decisions() - oldest.decisions()
	sig.VerifyFailRate = frac(dRejected, dRejected+dVerified)
	sig.BypassFrac = frac(dBypassed, dDecisions)
	sig.ScoreErrorRate = frac(dScoreErr, dDecisions)

	var issuedTotal, diffWeighted, hardIssued, hardVerified uint64
	for d := 1; d < len(cur.diffIssued); d++ {
		di := cur.diffIssued[d] - oldest.diffIssued[d]
		issuedTotal += di
		diffWeighted += uint64(d) * di
		if d >= s.cfg.HardDifficulty {
			hardIssued += di
			hardVerified += cur.diffVerified[d] - oldest.diffVerified[d]
		}
	}
	sig.MeanDifficulty = frac(float64(diffWeighted), float64(issuedTotal))
	// Solves lag issues by the solve time, so a window can briefly see
	// more hard verifies than hard issues; clamp so the proxy stays a
	// fraction.
	sig.HardSolveFrac = min(frac(float64(hardVerified), float64(hardIssued)), 1)
	if issuedTotal > 0 {
		target := uint64(math.Ceil(0.9 * float64(issuedTotal)))
		var cum uint64
		for d := 1; d < len(cur.diffIssued); d++ {
			cum += cur.diffIssued[d] - oldest.diffIssued[d]
			if cum >= target {
				sig.DiffP90 = float64(d)
				break
			}
		}
	}
	return sig
}

// frac is a/b with the empty case pinned to 0, keeping every signal
// NaN-free.
func frac(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func (s *Sampler) put(i int, v float64) { s.sig[i].Store(math.Float64bits(v)) }
func (s *Sampler) get(i int) float64    { return math.Float64frombits(s.sig[i].Load()) }
