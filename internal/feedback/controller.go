package feedback

import (
	"fmt"
	"sync"
	"time"

	"aipow/internal/obs"
	"aipow/internal/policy"
)

// Target is where the controller installs policy changes — the same
// atomic hot-swap path an operator uses. core.Framework satisfies it; the
// control plane passes an adapter that also keeps its spec bookkeeping
// consistent (a controller swap is declared behavior, not operator
// divergence).
type Target interface {
	SwapPolicy(policy.Policy) error
}

// DefaultInterval is the controller step cadence when Config.Interval is
// zero and the controller is driven through MaybeStep.
const DefaultInterval = time.Second

// Config assembles a Controller.
type Config struct {
	// Interval is the minimum time between MaybeStep-driven steps
	// (0 = DefaultInterval). Step ignores it — the simulation engine
	// steps explicitly at tick boundaries.
	Interval time.Duration

	// Sampler shapes the signal plane.
	Sampler SamplerConfig

	// Rules is the escalation ladder, in order: Rules[i] guards level
	// i+1. May be empty — the controller then only keeps the signal plane
	// (and its Load feed) fresh.
	Rules []Rule

	// Compile resolves a rule's policy spec into an installable policy.
	// The control plane passes registry resolution plus difficulty
	// clamping (and the load-adaptive wrap, when configured), so a
	// controller-installed policy obeys exactly the constraints a
	// spec-declared one would. Required when Rules is non-empty.
	Compile func(spec string) (policy.Policy, error)

	// Base is the level-0 policy restored on full de-escalation — the
	// pipeline's declared policy. Required when Rules is non-empty.
	Base policy.Policy

	// Events receives one defense event per level transition —
	// adapt.escalate with the triggering rule, signal name, and the signal
	// reading that tripped it; adapt.deescalate with the levels. Nil drops
	// them. Called under the controller's lock, so sinks must be fast and
	// must not call back into the controller.
	Events obs.Sink
}

// Transition is one controller level change.
type Transition struct {
	// At is when the transition was installed.
	At time.Time `json:"at"`

	// From and To are the levels before and after (0 = base).
	From int `json:"from"`
	To   int `json:"to"`

	// Rule is the triggering rule's condition for escalations, empty for
	// de-escalations.
	Rule string `json:"rule,omitempty"`
}

// maxTransitions bounds the retained transition log; the swap counters
// keep totals when a very long-lived controller rotates old entries out.
const maxTransitions = 256

// compiledRule is one ladder rung plus its runtime state.
type compiledRule struct {
	Rule
	pol      policy.Policy
	streak   int       // consecutive steps the condition has held
	lastTrue time.Time // when the condition last held (or escalation installed)
}

// Controller is the closed-loop brain: each Step refreshes the signal
// plane and settles the escalation ladder — escalating to the highest
// level whose rule has held for its activation delay, or stepping down
// one level once the current level's rule has been false for its hold
// time. All state advances only in Step/MaybeStep, with the clock passed
// in, so runs are deterministic and the simulation engine can drive the
// controller tick-by-tick on virtual time.
type Controller struct {
	sampler  *Sampler
	interval time.Duration
	base     policy.Policy

	mu          sync.Mutex
	target      Target
	rules       []compiledRule
	level       int
	lastStep    time.Time
	stepped     bool
	swaps       uint64
	escalations uint64
	transitions []Transition
	events      obs.Sink
}

// New builds a controller from cfg, compiling every rule's policy up
// front so a configuration typo fails at build time, not mid-attack. The
// controller is inert until Bind attaches its target and signal source.
func New(cfg Config) (*Controller, error) {
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("feedback: negative interval %v", cfg.Interval)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if len(cfg.Rules) > 0 {
		if cfg.Compile == nil {
			return nil, fmt.Errorf("feedback: rules require a policy compiler")
		}
		if cfg.Base == nil {
			return nil, fmt.Errorf("feedback: rules require a base policy to de-escalate to")
		}
	}
	sampler, err := NewSampler(cfg.Sampler)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		sampler:  sampler,
		interval: cfg.Interval,
		base:     cfg.Base,
		rules:    make([]compiledRule, 0, len(cfg.Rules)),
		events:   cfg.Events,
	}
	for _, r := range cfg.Rules {
		pol, err := cfg.Compile(r.Policy)
		if err != nil {
			return nil, fmt.Errorf("feedback: rule %s: %w", r, err)
		}
		if pol == nil {
			return nil, fmt.Errorf("feedback: rule %s: compiler returned a nil policy", r)
		}
		c.rules = append(c.rules, compiledRule{Rule: r, pol: pol})
	}
	return c, nil
}

// Bind attaches the swap target and the counter source the signal plane
// polls. Until bound, steps are inert (zero signals, no swaps).
func (c *Controller) Bind(target Target, src Source) {
	c.sampler.Bind(src)
	c.mu.Lock()
	c.target = target
	c.mu.Unlock()
}

// Sampler exposes the controller's signal plane — its Load method is the
// policy.LoadFunc for load-adaptive policies on the same pipeline.
func (c *Controller) Sampler() *Sampler { return c.sampler }

// Step refreshes the signals and settles the ladder as of now. Swap
// errors are returned; the controller's state only advances past a level
// change once the swap installed.
func (c *Controller) Step(now time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stepLocked(now)
}

// MaybeStep is Step rate-limited to the configured interval — what a
// server's coarse adapt ticker calls. It reports whether a step ran.
func (c *Controller) MaybeStep(now time.Time) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stepped && now.Sub(c.lastStep) < c.interval {
		return false, nil
	}
	return true, c.stepLocked(now)
}

// stepLocked runs one controller step under c.mu.
func (c *Controller) stepLocked(now time.Time) error {
	sig := c.sampler.Step(now)
	c.lastStep, c.stepped = now, true
	if c.target == nil {
		return nil
	}

	desired := c.level
	for i := range c.rules {
		r := &c.rules[i]
		holds := r.When.Eval(sig) && (r.Unless == nil || !r.Unless.Eval(sig))
		if holds {
			r.streak++
			r.lastTrue = now
		} else {
			r.streak = 0
		}
		if holds && r.streak >= r.After && i+1 > desired {
			desired = i + 1
		}
	}

	if desired > c.level {
		r := &c.rules[desired-1]
		if err := c.target.SwapPolicy(r.pol); err != nil {
			return fmt.Errorf("feedback: escalate to level %d (%s): %w", desired, r.Policy, err)
		}
		// The hold clock starts at installation, so a level is kept for
		// at least Hold even if its condition clears immediately.
		r.lastTrue = now
		from := c.level
		c.record(now, desired, r.When.String())
		c.escalations++
		if c.events != nil {
			v, _ := sig.Value(r.When.Signal)
			c.events(obs.Event{
				At:     now,
				Kind:   obs.EventAdaptEscalate,
				From:   from,
				To:     desired,
				Rule:   r.When.String(),
				Signal: r.When.Signal,
				Value:  v,
			})
		}
		return nil
	}

	// Bounded de-escalation: at most one level per step, and only after
	// the current level's rule has been false for its hold time — a
	// pulsing signal that re-fires inside the hold window keeps the
	// defense up instead of flapping it.
	if c.level > 0 {
		r := &c.rules[c.level-1]
		if r.streak == 0 && now.Sub(r.lastTrue) >= r.Hold {
			next := c.level - 1
			pol := c.base
			if next > 0 {
				pol = c.rules[next-1].pol
			}
			if err := c.target.SwapPolicy(pol); err != nil {
				return fmt.Errorf("feedback: de-escalate to level %d: %w", next, err)
			}
			from := c.level
			c.record(now, next, "")
			if c.events != nil {
				v, _ := sig.Value(r.When.Signal)
				c.events(obs.Event{
					At:     now,
					Kind:   obs.EventAdaptDeescalate,
					From:   from,
					To:     next,
					Signal: r.When.Signal,
					Value:  v,
				})
			}
		}
	}
	return nil
}

// record appends a transition (bounded) and advances the level.
func (c *Controller) record(now time.Time, to int, rule string) {
	if len(c.transitions) >= maxTransitions {
		copy(c.transitions, c.transitions[1:])
		c.transitions = c.transitions[:maxTransitions-1]
	}
	c.transitions = append(c.transitions, Transition{At: now, From: c.level, To: to, Rule: rule})
	c.level = to
	c.swaps++
}

// Level reports the current escalation level (0 = base policy).
func (c *Controller) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Swaps reports how many policy swaps the controller has installed.
func (c *Controller) Swaps() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.swaps
}

// Transitions returns a copy of the retained level-change log (the most
// recent maxTransitions entries).
func (c *Controller) Transitions() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Transition(nil), c.transitions...)
}

// Rules reports the ladder's rule specs, in level order.
func (c *Controller) Rules() []string {
	out := make([]string, len(c.rules))
	for i := range c.rules {
		out[i] = c.rules[i].Rule.String()
	}
	return out
}

// StatsPrefixInto adds the controller's observable state — level, swap
// counts, and every signal — into dst under prefixed keys, for a stats
// endpoint aggregating pipelines into one scrape map.
func (c *Controller) StatsPrefixInto(prefix string, dst map[string]float64) {
	c.mu.Lock()
	level, swaps, escalations := c.level, c.swaps, c.escalations
	c.mu.Unlock()
	dst[prefix+"level"] = float64(level)
	dst[prefix+"swaps"] = float64(swaps)
	dst[prefix+"escalations"] = float64(escalations)
	sig := c.sampler.Signals()
	for _, name := range signalNames {
		v, _ := sig.Value(name)
		dst[prefix+name] = v
	}
}
