package feedback

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"aipow/internal/policy"
)

// DefaultHold is a rule's de-escalation hysteresis when hold is omitted:
// the condition must stay false this long before the controller steps back
// down past the rule's level.
const DefaultHold = 30 * time.Second

// Condition is one "signal op threshold" comparison, e.g.
// "verify_fail_rate>0.3".
type Condition struct {
	Signal    string
	Op        string // one of ">", ">=", "<", "<="
	Threshold float64
}

// ParseCondition compiles a condition expression. The signal name must be
// one of the package's Signal* constants.
func ParseCondition(expr string) (Condition, error) {
	expr = strings.TrimSpace(expr)
	for _, op := range []string{">=", "<=", ">", "<"} {
		idx := strings.Index(expr, op)
		if idx < 0 {
			continue
		}
		c := Condition{
			Signal: strings.TrimSpace(expr[:idx]),
			Op:     op,
		}
		raw := strings.TrimSpace(expr[idx+len(op):])
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Condition{}, fmt.Errorf("feedback: condition %q: bad threshold %q", expr, raw)
		}
		c.Threshold = v
		if !KnownSignal(c.Signal) {
			return Condition{}, fmt.Errorf("feedback: condition %q: unknown signal %q (known: %s)",
				expr, c.Signal, strings.Join(SignalNames(), ", "))
		}
		return c, nil
	}
	return Condition{}, fmt.Errorf("feedback: condition %q: want '<signal><op><value>' with op in >, >=, <, <=", expr)
}

// Eval reports whether the condition holds for the given signals.
func (c Condition) Eval(sig Signals) bool {
	v, ok := sig.Value(c.Signal)
	if !ok {
		return false
	}
	switch c.Op {
	case ">":
		return v > c.Threshold
	case ">=":
		return v >= c.Threshold
	case "<":
		return v < c.Threshold
	case "<=":
		return v <= c.Threshold
	}
	return false
}

// String renders the condition in its parseable form.
func (c Condition) String() string {
	return fmt.Sprintf("%s%s%v", c.Signal, c.Op, c.Threshold)
}

// Rule is one rung of a controller's escalation ladder, compiled from an
// escalate(...) spec. Rules are ordered: rule i guards level i+1, and the
// controller always sits at the highest level whose rule currently
// demands it.
type Rule struct {
	// When is the trigger: the rule demands its level while When holds
	// (and Unless does not).
	When Condition

	// Unless, when set, gates the rule: while it holds the rule is
	// treated as not demanding its level — the false-positive softener
	// ("unless=hard_solve_frac>0.5").
	Unless *Condition

	// Policy is the component spec of the policy installed at this level,
	// e.g. "policy2" or "fixed(difficulty=16)". Resolved by the
	// controller's Compile hook.
	Policy string

	// Hold is the de-escalation hysteresis: the rule's condition must
	// have been false for Hold before the controller steps back down past
	// this level (default DefaultHold). Re-triggering resets the timer,
	// which is what keeps a pulsing attacker from flapping the policy.
	Hold time.Duration

	// After is how many consecutive steps the condition must hold before
	// the rule escalates (default 1) — the onset debounce.
	After int
}

// ParseRule compiles one escalation rule in the shared component-spec
// syntax:
//
//	escalate(when=<cond>, policy=<spec>[, hold=<dur>][, after=<n>][, unless=<cond>])
//
// Conditions are "<signal><op><value>" (op ∈ {>, >=, <, <=}); the policy
// value may itself be a parameterized component spec, nested parentheses
// included.
func ParseRule(spec string) (Rule, error) {
	name, params, err := policy.ParseSpecParams(spec)
	if err != nil {
		return Rule{}, fmt.Errorf("feedback: rule %q: %w", spec, err)
	}
	if name != "escalate" {
		return Rule{}, fmt.Errorf("feedback: rule %q: unknown statement %q (want escalate)", spec, name)
	}
	r := Rule{Hold: DefaultHold, After: 1}
	var haveWhen bool
	for _, p := range params {
		switch p.Key {
		case "when":
			c, err := ParseCondition(p.Value)
			if err != nil {
				return Rule{}, err
			}
			r.When, haveWhen = c, true
		case "unless":
			c, err := ParseCondition(p.Value)
			if err != nil {
				return Rule{}, err
			}
			r.Unless = &c
		case "policy":
			if p.Value == "" {
				return Rule{}, fmt.Errorf("feedback: rule %q: empty policy", spec)
			}
			r.Policy = p.Value
		case "hold":
			d, err := time.ParseDuration(p.Value)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("feedback: rule %q: bad hold %q", spec, p.Value)
			}
			r.Hold = d
		case "after":
			n, err := strconv.Atoi(p.Value)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("feedback: rule %q: bad after %q (want a step count ≥ 1)", spec, p.Value)
			}
			r.After = n
		default:
			return Rule{}, fmt.Errorf("feedback: rule %q: unknown parameter %q (allowed: when, policy, hold, after, unless)", spec, p.Key)
		}
	}
	if !haveWhen {
		return Rule{}, fmt.Errorf("feedback: rule %q: missing when=<condition>", spec)
	}
	if r.Policy == "" {
		return Rule{}, fmt.Errorf("feedback: rule %q: missing policy=<spec>", spec)
	}
	return r, nil
}

// String renders the rule in its parseable spec form.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "escalate(when=%s, policy=%s, hold=%s", r.When, r.Policy, r.Hold)
	if r.After > 1 {
		fmt.Fprintf(&b, ", after=%d", r.After)
	}
	if r.Unless != nil {
		fmt.Fprintf(&b, ", unless=%s", r.Unless)
	}
	b.WriteString(")")
	return b.String()
}
