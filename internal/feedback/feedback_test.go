package feedback

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aipow/internal/obs"
	"aipow/internal/policy"
	"aipow/internal/puzzle"
)

// fakeSource is a hand-cranked counter source: tests set cumulative
// values between steps.
type fakeSource struct {
	mu                                              sync.Mutex
	issued, verified, rejected, bypassed, scoreErrs float64
	diffIssued, diffVerified                        [puzzle.MaxDifficulty + 1]uint64
}

func (f *fakeSource) StatsInto(dst map[string]float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dst["issued"] = f.issued
	dst["verified"] = f.verified
	dst["rejected"] = f.rejected
	dst["bypassed"] = f.bypassed
	dst["score_errors"] = f.scoreErrs
}

func (f *fakeSource) DifficultyProfileInto(issued, verified []uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	copy(issued, f.diffIssued[:])
	copy(verified, f.diffVerified[:])
}

// issue records n issues at difficulty d on the cumulative counters.
func (f *fakeSource) issue(d int, n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.issued += float64(n)
	f.diffIssued[d] += n
}

// verify records n verifies at difficulty d.
func (f *fakeSource) verify(d int, n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.verified += float64(n)
	f.diffVerified[d] += n
}

func (f *fakeSource) reject(n uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rejected += float64(n)
}

// epoch is the tests' deterministic clock origin.
var epoch = time.Date(2022, 3, 21, 0, 0, 0, 0, time.UTC)

func at(step int) time.Time { return epoch.Add(time.Duration(step) * time.Second) }

func TestSamplerRateAndLoad(t *testing.T) {
	s, err := NewSampler(SamplerConfig{Capacity: 200, Alpha: 0.5, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{}
	s.Bind(src)

	// 100 decisions/s sustained: EWMA (alpha 0.5, seeded by the first
	// sample) converges from 100 immediately.
	s.Step(at(0))
	for i := 1; i <= 5; i++ {
		src.issue(5, 100)
		sig := s.Step(at(i))
		if sig.Rate != 100 {
			t.Fatalf("step %d: rate = %v, want 100", i, sig.Rate)
		}
		if sig.Load != 0.5 {
			t.Fatalf("step %d: load = %v, want 0.5", i, sig.Load)
		}
	}
	// Rate doubles: EWMA walks 100 → 150 → 175 (alpha 0.5 decay table).
	src.issue(5, 200)
	if got := s.Step(at(6)).Rate; got != 150 {
		t.Fatalf("after one 200/s step: rate = %v, want 150", got)
	}
	src.issue(5, 200)
	if got := s.Step(at(7)).Rate; got != 175 {
		t.Fatalf("after two 200/s steps: rate = %v, want 175", got)
	}
	// Load saturates at 1 even when rate exceeds capacity.
	for i := 8; i < 16; i++ {
		src.issue(5, 1000)
		s.Step(at(i))
	}
	if got := s.Load(); got != 1 {
		t.Fatalf("load = %v, want clamped 1", got)
	}
}

func TestSamplerWindowedRatios(t *testing.T) {
	s, err := NewSampler(SamplerConfig{Window: 3, HardDifficulty: 10})
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{}
	s.Bind(src)

	s.Step(at(0))
	src.issue(4, 60)
	src.issue(12, 40)
	src.verify(4, 50)
	src.verify(12, 10)
	src.reject(50)
	sig := s.Step(at(1))
	if got, want := sig.VerifyFailRate, 50.0/110.0; !approx(got, want) {
		t.Fatalf("verify_fail_rate = %v, want %v", got, want)
	}
	if got, want := sig.MeanDifficulty, (4.0*60+12.0*40)/100.0; !approx(got, want) {
		t.Fatalf("mean_difficulty = %v, want %v", got, want)
	}
	if got := sig.DiffP90; got != 12 {
		t.Fatalf("diff_p90 = %v, want 12", got)
	}
	if got, want := sig.HardSolveFrac, 0.25; !approx(got, want) {
		t.Fatalf("hard_solve_frac = %v, want %v", got, want)
	}

	// Window rotation: after 3 idle steps the deltas age out and the
	// ratios return to zero.
	for i := 2; i <= 4; i++ {
		sig = s.Step(at(i))
	}
	if sig.VerifyFailRate != 0 || sig.MeanDifficulty != 0 || sig.HardSolveFrac != 0 {
		t.Fatalf("signals did not age out of the window: %+v", sig)
	}
}

func TestSamplerHardSolveFracClamped(t *testing.T) {
	s, err := NewSampler(SamplerConfig{Window: 2, HardDifficulty: 10})
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{}
	s.Bind(src)
	s.Step(at(0))
	// Solves lag issues: a window can see more hard verifies than issues.
	src.issue(12, 1)
	src.verify(12, 5)
	if got := s.Step(at(1)).HardSolveFrac; got != 1 {
		t.Fatalf("hard_solve_frac = %v, want clamped 1", got)
	}
}

func TestSamplerUnboundIsInert(t *testing.T) {
	s, err := NewSampler(SamplerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sig := s.Step(at(0)); sig != (Signals{}) {
		t.Fatalf("unbound sampler produced signals: %+v", sig)
	}
}

func TestParseCondition(t *testing.T) {
	good := map[string]Condition{
		"verify_fail_rate>0.3": {Signal: "verify_fail_rate", Op: ">", Threshold: 0.3},
		"load >= 0.8":          {Signal: "load", Op: ">=", Threshold: 0.8},
		"hard_solve_frac<=0.5": {Signal: "hard_solve_frac", Op: "<=", Threshold: 0.5},
		"rate_p90 < 10":        {Signal: "rate_p90", Op: "<", Threshold: 10},
	}
	for expr, want := range good {
		got, err := ParseCondition(expr)
		if err != nil {
			t.Fatalf("ParseCondition(%q): %v", expr, err)
		}
		if got != want {
			t.Fatalf("ParseCondition(%q) = %+v, want %+v", expr, got, want)
		}
	}
	for _, expr := range []string{"", "load", "load>", "load>x", "bogus>1", "load==1"} {
		if _, err := ParseCondition(expr); err == nil {
			t.Fatalf("ParseCondition(%q) unexpectedly succeeded", expr)
		}
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("escalate(when=verify_fail_rate>0.3, policy=policy2, hold=30s)")
	if err != nil {
		t.Fatal(err)
	}
	if r.When.Signal != "verify_fail_rate" || r.Policy != "policy2" || r.Hold != 30*time.Second || r.After != 1 {
		t.Fatalf("unexpected rule: %+v", r)
	}

	// The policy value may itself be a parameterized component spec.
	r, err = ParseRule("escalate(when=load>0.8, policy=fixed(difficulty=16), hold=10s, after=3, unless=hard_solve_frac>0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "fixed(difficulty=16)" || r.After != 3 || r.Unless == nil || r.Unless.Signal != "hard_solve_frac" {
		t.Fatalf("unexpected rule: %+v", r)
	}

	// Round trip through String.
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if r2.Policy != r.Policy || r2.When != r.When || *r2.Unless != *r.Unless || r2.Hold != r.Hold || r2.After != r.After {
		t.Fatalf("round trip changed the rule: %+v vs %+v", r, r2)
	}

	bad := []string{
		"",
		"deescalate(when=load>1, policy=policy2)",
		"escalate",
		"escalate(policy=policy2)",
		"escalate(when=load>0.5)",
		"escalate(when=load>0.5, policy=policy2, hold=nope)",
		"escalate(when=load>0.5, policy=policy2, hold=-3s)",
		"escalate(when=load>0.5, policy=policy2, after=0)",
		"escalate(when=load>0.5, policy=policy2, bogus=1)",
		"escalate(when=nosuchsignal>0.5, policy=policy2)",
		"escalate(when=load>0.5, policy=policy2, unless=wat)",
		"escalate(when=load>0.5, when=load>0.6, policy=policy2)",
	}
	for _, spec := range bad {
		if _, err := ParseRule(spec); err == nil {
			t.Fatalf("ParseRule(%q) unexpectedly succeeded", spec)
		}
	}
}

// swapRecorder records installed policies.
type swapRecorder struct {
	mu    sync.Mutex
	names []string
	fail  bool
}

func (r *swapRecorder) SwapPolicy(p policy.Policy) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail {
		return fmt.Errorf("swap refused")
	}
	r.names = append(r.names, p.Name())
	return nil
}

func (r *swapRecorder) installed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// compile resolves test policy specs through the built-in registry.
func compile(spec string) (policy.Policy, error) { return policy.NewRegistry().New(spec) }

// newTestController wires a controller over a fake source with 1 s steps.
func newTestController(t *testing.T, src *fakeSource, target Target, rules ...string) *Controller {
	t.Helper()
	parsed := make([]Rule, 0, len(rules))
	for _, r := range rules {
		pr, err := ParseRule(r)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, pr)
	}
	base, err := compile("policy1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Sampler: SamplerConfig{Capacity: 100, Alpha: 1, Window: 2},
		Rules:   parsed,
		Compile: compile,
		Base:    base,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(target, src)
	return c
}

func TestControllerEscalateAndDeescalate(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=policy2, hold=3s)")

	step := func(i int, decisionsPerSec uint64) {
		src.issue(5, decisionsPerSec)
		if err := c.Step(at(i)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}

	step(0, 10) // seeds the rate EWMA
	step(1, 10)
	if c.Level() != 0 {
		t.Fatalf("escalated on calm traffic")
	}
	step(2, 500) // attack onset: alpha 1 ⇒ rate jumps immediately
	if c.Level() != 1 {
		t.Fatalf("level = %d after onset, want 1", c.Level())
	}
	// Attack ends; the hold keeps the level up until 3 s have passed
	// since the condition last held (the escalation instant).
	step(3, 10)
	step(4, 10)
	if c.Level() != 1 {
		t.Fatalf("de-escalated before hold expired")
	}
	step(5, 10) // 3 s since the escalation at step 2
	if c.Level() != 0 {
		t.Fatalf("level = %d after hold, want 0", c.Level())
	}
	want := []string{"policy2", "policy1"}
	got := target.installed()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("installed policies %v, want %v", got, want)
	}
	if c.Swaps() != 2 {
		t.Fatalf("swaps = %d, want 2", c.Swaps())
	}
	tr := c.Transitions()
	if len(tr) != 2 || tr[0].To != 1 || tr[1].To != 0 || tr[0].Rule == "" || tr[1].Rule != "" {
		t.Fatalf("unexpected transitions: %+v", tr)
	}
}

func TestControllerFlapGuard(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=policy2, hold=5s)")

	// Pulse on/off every other second for 20 s: the hold window (5 s)
	// always outlives the gap (1 s), so exactly one escalation happens.
	src.issue(5, 10)
	if err := c.Step(at(0)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		n := uint64(10)
		if i%2 == 0 {
			n = 500
		}
		src.issue(5, n)
		if err := c.Step(at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Level() != 1 {
		t.Fatalf("level = %d mid-pulsing, want 1 (held)", c.Level())
	}
	if c.Swaps() != 1 {
		t.Fatalf("swaps = %d under pulsing signal, want 1 (no flapping)", c.Swaps())
	}
	// Quiet for hold: exactly one de-escalation.
	for i := 21; i <= 28; i++ {
		src.issue(5, 10)
		if err := c.Step(at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Level() != 0 || c.Swaps() != 2 {
		t.Fatalf("level %d swaps %d after quiet period, want 0/2", c.Level(), c.Swaps())
	}
}

func TestControllerAfterDebounce(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=policy2, hold=2s, after=3)")

	src.issue(5, 10)
	if err := c.Step(at(0)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		src.issue(5, 500)
		if err := c.Step(at(i)); err != nil {
			t.Fatal(err)
		}
		if c.Level() != 0 {
			t.Fatalf("escalated after %d high steps, want after=3 debounce", i)
		}
	}
	src.issue(5, 500)
	if err := c.Step(at(3)); err != nil {
		t.Fatal(err)
	}
	if c.Level() != 1 {
		t.Fatalf("did not escalate after 3 sustained steps")
	}
}

func TestControllerUnlessGatesEscalation(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=fixed(difficulty=16), hold=2s, unless=hard_solve_frac>0.5)")

	src.issue(5, 10)
	if err := c.Step(at(0)); err != nil {
		t.Fatal(err)
	}
	// High volume, but the hard puzzles are being solved — a misscored
	// flash crowd, not a botnet. The gate must keep the controller down.
	for i := 1; i <= 5; i++ {
		src.issue(5, 400)
		src.issue(14, 100)
		src.verify(14, 90)
		if err := c.Step(at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Level() != 0 || c.Swaps() != 0 {
		t.Fatalf("escalated through the FP gate: level %d swaps %d", c.Level(), c.Swaps())
	}
	// Same volume with abandoned hard puzzles: a real attack — escalate.
	for i := 6; i <= 9; i++ {
		src.issue(5, 400)
		src.issue(14, 100)
		if err := c.Step(at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Level() != 1 {
		t.Fatalf("did not escalate once the FP gate cleared")
	}
}

func TestControllerLadderBoundedDeescalation(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=policy2, hold=1s)",
		"escalate(when=rate>300, policy=fixed(difficulty=18), hold=1s)")

	src.issue(5, 10)
	if err := c.Step(at(0)); err != nil {
		t.Fatal(err)
	}
	src.issue(5, 500)
	if err := c.Step(at(1)); err != nil {
		t.Fatal(err)
	}
	if c.Level() != 2 {
		t.Fatalf("level = %d under full flood, want straight to 2", c.Level())
	}
	// Collapse of the signal: both holds expire together, but levels
	// unwind one per step, not at once.
	src.issue(5, 10)
	if err := c.Step(at(2)); err != nil {
		t.Fatal(err)
	}
	if c.Level() != 1 {
		t.Fatalf("level = %d after first hold, want 1 (bounded de-escalation)", c.Level())
	}
	src.issue(5, 10)
	if err := c.Step(at(3)); err != nil {
		t.Fatal(err)
	}
	if c.Level() != 0 {
		t.Fatalf("level = %d, want 0", c.Level())
	}
	want := []string{"fixed(18)", "policy2", "policy1"}
	got := target.installed()
	if len(got) != 3 || got[1] != "policy2" {
		t.Fatalf("installed %v, want shapes %v", got, want)
	}
}

func TestControllerSwapErrorKeepsLevel(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{fail: true}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=policy2, hold=1s)")
	src.issue(5, 10)
	if err := c.Step(at(0)); err != nil {
		t.Fatal(err)
	}
	src.issue(5, 500)
	if err := c.Step(at(1)); err == nil {
		t.Fatal("swap failure not surfaced")
	}
	if c.Level() != 0 || c.Swaps() != 0 {
		t.Fatalf("level advanced past a failed swap: level %d swaps %d", c.Level(), c.Swaps())
	}
}

func TestControllerMaybeStepInterval(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	base, err := compile("policy1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Interval: 5 * time.Second, Compile: compile, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(target, src)
	ran, err := c.MaybeStep(at(0))
	if err != nil || !ran {
		t.Fatalf("first MaybeStep: ran=%v err=%v", ran, err)
	}
	ran, err = c.MaybeStep(at(2))
	if err != nil || ran {
		t.Fatalf("early MaybeStep ran (interval not respected)")
	}
	ran, err = c.MaybeStep(at(5))
	if err != nil || !ran {
		t.Fatalf("due MaybeStep skipped")
	}
}

func TestNewControllerValidation(t *testing.T) {
	rule, err := ParseRule("escalate(when=rate>1, policy=policy2)")
	if err != nil {
		t.Fatal(err)
	}
	base, err := compile("policy1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{Interval: -time.Second},
		{Rules: []Rule{rule}, Base: base},       // no compiler
		{Rules: []Rule{rule}, Compile: compile}, // no base
		{Rules: []Rule{rule}, Compile: compile, Base: base, Sampler: SamplerConfig{Capacity: -1}},
		{Rules: []Rule{{When: rule.When, Policy: "nosuch", After: 1}}, Compile: compile, Base: base},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: New unexpectedly succeeded", i)
		}
	}
}

// TestControllerConcurrentObservers is the -race hammer: one stepping
// goroutine against concurrent hot-path readers (Load, Signals) and a
// stats scraper.
func TestControllerConcurrentObservers(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	c := newTestController(t, src, target,
		"escalate(when=rate>50, policy=policy2, hold=1s)")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make(map[string]float64, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Sampler().Load()
				_ = c.Sampler().Signals()
				c.StatsPrefixInto("p.", dst)
				_ = c.Level()
				_ = c.Transitions()
			}
		}()
	}
	// Writers hammer the source counters while the controller steps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			src.issue(5+i%10, 7)
			src.verify(5+i%10, 3)
		}
	}()
	for i := 0; i < 500; i++ {
		if err := c.Step(at(i)); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestControllerEmitsAdaptEvents(t *testing.T) {
	src := &fakeSource{}
	target := &swapRecorder{}
	var events []obs.Event
	rule, err := ParseRule("escalate(when=rate>50, policy=policy2, hold=3s)")
	if err != nil {
		t.Fatal(err)
	}
	base, err := compile("policy1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Sampler: SamplerConfig{Capacity: 100, Alpha: 1, Window: 2},
		Rules:   []Rule{rule},
		Compile: compile,
		Base:    base,
		Events:  func(e obs.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(target, src)

	step := func(i int, decisionsPerSec uint64) {
		src.issue(5, decisionsPerSec)
		if err := c.Step(at(i)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	step(0, 10)
	step(1, 10)
	step(2, 500) // onset → escalate
	step(3, 10)
	step(4, 10)
	step(5, 10) // hold expired → de-escalate

	if len(events) != 2 {
		t.Fatalf("events = %d, want 2: %+v", len(events), events)
	}
	esc := events[0]
	if esc.Kind != obs.EventAdaptEscalate || esc.From != 0 || esc.To != 1 {
		t.Errorf("escalate event = %+v", esc)
	}
	if esc.Rule != "rate>50" || esc.Signal != "rate" {
		t.Errorf("escalate rule/signal = %q/%q, want rate>50/rate", esc.Rule, esc.Signal)
	}
	if esc.Value <= 50 {
		t.Errorf("escalate signal value = %v, want the >50 reading that tripped the rule", esc.Value)
	}
	if !esc.At.Equal(at(2)) {
		t.Errorf("escalate at %v, want %v", esc.At, at(2))
	}
	de := events[1]
	if de.Kind != obs.EventAdaptDeescalate || de.From != 1 || de.To != 0 {
		t.Errorf("de-escalate event = %+v", de)
	}
	if de.Signal != "rate" || de.Value > 50 {
		t.Errorf("de-escalate signal = %q value %v, want calm rate reading", de.Signal, de.Value)
	}
}
