package feedback

import (
	"sync"

	"aipow/internal/puzzle"
)

// SumSource folds several counter sources into one by adding their
// cumulative counters pointwise — the fleet-feedback combinator: bind a
// controller's sampler to the local framework summed with the cluster
// node's peer-reported counters and every signal the sampler derives
// (rate, load, verify-fail ratio, the difficulty profile quantiles) is
// computed over cluster-wide totals, so an attack striped 1/K across K
// nodes trips the same thresholds an unstriped attack would.
//
// Unlike a bare Source, which overwrites same-named keys, SumSource adds —
// that is the point. Constituent sources only need their counters to be
// cumulative and individually monotone; bounded-staleness sources (peer
// counters that refresh once per exchange round) sum soundly because the
// sampler differences snapshots over its window rather than trusting any
// instant.
type SumSource struct {
	sources []Source

	mu       sync.Mutex
	scratch  map[string]float64
	issued   [puzzle.MaxDifficulty + 1]uint64
	verified [puzzle.MaxDifficulty + 1]uint64
}

// NewSumSource returns a source summing the given sources' counters. Nil
// entries are skipped, so callers can pass an optional peer source
// unconditionally.
func NewSumSource(sources ...Source) *SumSource {
	kept := make([]Source, 0, len(sources))
	for _, s := range sources {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return &SumSource{sources: kept, scratch: make(map[string]float64, 8)}
}

// StatsInto implements Source by adding every constituent's counters into
// dst. Safe for concurrent use.
func (s *SumSource) StatsInto(dst map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, src := range s.sources {
		clear(s.scratch)
		src.StatsInto(s.scratch)
		for k, v := range s.scratch {
			dst[k] += v
		}
	}
}

// DifficultyProfileInto implements Source by summing the constituents'
// per-difficulty profiles into the destination slices.
func (s *SumSource) DifficultyProfileInto(issued, verified []uint64) {
	for i := range issued {
		issued[i] = 0
	}
	for i := range verified {
		verified[i] = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, src := range s.sources {
		clear(s.issued[:])
		clear(s.verified[:])
		src.DifficultyProfileInto(s.issued[:], s.verified[:])
		for i := range issued {
			if i < len(s.issued) {
				issued[i] += s.issued[i]
			}
		}
		for i := range verified {
			if i < len(s.verified) {
				verified[i] += s.verified[i]
			}
		}
	}
}

var _ Source = (*SumSource)(nil)
