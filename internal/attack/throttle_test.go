package attack

import (
	"testing"
	"time"

	"aipow/internal/netsim"
	"aipow/internal/policy"
)

// TestClosedLoopThrottledByDifficulty is the mechanism check behind E4:
// the same closed-loop bot fleet completes far fewer requests when every
// request costs a hard puzzle, because each bot's next request waits for
// the previous solve.
func TestClosedLoopThrottledByDifficulty(t *testing.T) {
	scenario := func() Scenario {
		return Scenario{
			Duration: 20 * time.Second,
			Specs: []ClientSpec{
				{Kind: KindBot, Count: 30, ClosedLoop: true,
					HashRate: 27000, Strategy: StrategySolve},
			},
			Link:       netsim.Link{OneWay: 5 * time.Millisecond},
			IssueTime:  100 * time.Microsecond,
			VerifyTime: 100 * time.Microsecond,
			Seed:       11,
		}
	}
	served := func(d int) uint64 {
		t.Helper()
		sc := scenario()
		pol, err := policy.NewFixed(d)
		if err != nil {
			t.Fatal(err)
		}
		fw := buildFramework(t, sc, pol)
		res, err := Run(fw, sc)
		if err != nil {
			t.Fatal(err)
		}
		return res.ByKind[KindBot].Served
	}
	easy := served(1)  // ~2 hashes: cycle ≈ RTT
	hard := served(14) // ~16 k hashes ≈ 600 ms at 27 kH/s
	if easy < 4*hard {
		t.Fatalf("difficulty did not throttle closed-loop bots: easy=%d hard=%d", easy, hard)
	}
}

// TestClosedLoopRetryAfterDrop verifies that a dropped request does not
// wedge a closed-loop client: it retries after the backoff.
func TestClosedLoopRetryAfterDrop(t *testing.T) {
	sc := Scenario{
		Duration: 10 * time.Second,
		Specs: []ClientSpec{
			{Kind: KindBot, Count: 20, ClosedLoop: true, RetryBackoff: 50 * time.Millisecond,
				HashRate: 1e9, Strategy: StrategySolve},
		},
		Link:       netsim.Link{OneWay: time.Millisecond},
		IssueTime:  2 * time.Millisecond, // capacity 500/s vs ~20 bots hammering
		VerifyTime: 2 * time.Millisecond,
		QueueCap:   4,
		Seed:       13,
	}
	fw := buildFramework(t, sc, policy.Policy1())
	res, err := Run(fw, sc)
	if err != nil {
		t.Fatal(err)
	}
	bot := res.ByKind[KindBot]
	if bot.Dropped == 0 {
		t.Fatal("scenario did not exercise drops")
	}
	// Despite drops, clients kept cycling: total completions must far
	// exceed one per client (which is all they would manage if the first
	// drop wedged them).
	if bot.Served < uint64(5*sc.Specs[0].Count) {
		t.Fatalf("served = %d, clients appear wedged after drops", bot.Served)
	}
}
