package attack

import (
	"testing"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/netsim"
	"aipow/internal/policy"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

// threatScorer reads the "threat" attribute as the score.
type threatScorer struct{}

func (threatScorer) Score(attrs map[string]float64) (float64, error) {
	return attrs["threat"], nil
}

// buildFramework wires a framework whose store marks the given scenario's
// bot populations with high threat and benign ones with low threat.
func buildFramework(t *testing.T, sc Scenario, pol policy.Policy, opts ...core.Option) *core.Framework {
	t.Helper()
	store, err := features.NewMapStore(map[string]float64{"threat": 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, ips := range sc.ClientIPs() {
		threat := 1.0
		if sc.Specs[i].Kind == KindBot {
			threat = 9.0
		}
		for _, ip := range ips {
			store.Put(ip, map[string]float64{"threat": threat})
		}
	}
	base := []core.Option{
		core.WithKey(testKey),
		core.WithScorer(threatScorer{}),
		core.WithPolicy(pol),
		core.WithSource(store),
		core.WithReplayCacheSize(0), // sim models verify; skip cache growth
	}
	fw, err := core.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// smallScenario is a fast mixed workload.
func smallScenario() Scenario {
	return Scenario{
		Duration: 20 * time.Second,
		Specs: []ClientSpec{
			{Kind: KindBenign, Count: 10, RequestRate: 0.5, HashRate: 27000, Strategy: StrategySolve},
			{Kind: KindBot, Count: 40, RequestRate: 2, HashRate: 27000, Strategy: StrategySolve},
		},
		Link:       netsim.Link{OneWay: 5 * time.Millisecond},
		IssueTime:  200 * time.Microsecond,
		VerifyTime: 200 * time.Microsecond,
		Seed:       7,
	}
}

func TestScenarioValidation(t *testing.T) {
	fw := buildFramework(t, smallScenario(), policy.Policy1())
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero_duration", func(s *Scenario) { s.Duration = 0 }},
		{"no_specs", func(s *Scenario) { s.Specs = nil }},
		{"bad_rate", func(s *Scenario) { s.Specs[0].RequestRate = 0 }},
		{"bad_strategy", func(s *Scenario) { s.Specs[0].Strategy = 0 }},
		{"no_hash_rate", func(s *Scenario) { s.Specs[0].HashRate = 0 }},
		{"negative_count", func(s *Scenario) { s.Specs[0].Count = -1 }},
		{"negative_service", func(s *Scenario) { s.IssueTime = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := smallScenario()
			tt.mutate(&sc)
			if _, err := Run(fw, sc); err == nil {
				t.Fatal("invalid scenario accepted")
			}
		})
	}
	if _, err := Run(nil, smallScenario()); err == nil {
		t.Fatal("nil framework accepted")
	}
}

func TestClientIPsDeterministicAndDistinct(t *testing.T) {
	sc := smallScenario()
	a, b := sc.ClientIPs(), sc.ClientIPs()
	seen := map[string]bool{}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("ClientIPs not deterministic")
			}
			if seen[a[i][j]] {
				t.Fatalf("duplicate IP %s", a[i][j])
			}
			seen[a[i][j]] = true
		}
	}
}

func TestRunServesTraffic(t *testing.T) {
	sc := smallScenario()
	fw := buildFramework(t, sc, policy.Policy1())
	res, err := Run(fw, sc)
	if err != nil {
		t.Fatal(err)
	}
	ben := res.ByKind[KindBenign]
	bot := res.ByKind[KindBot]
	if ben.Requests == 0 || bot.Requests == 0 {
		t.Fatalf("no traffic generated: %+v / %+v", ben, bot)
	}
	if ben.Served == 0 {
		t.Fatal("no benign request served")
	}
	if ben.Latency.Count() != int(ben.Served) {
		t.Fatalf("latency samples %d != served %d", ben.Latency.Count(), ben.Served)
	}
	// Bots score 9 → policy1 difficulty 10; benign score 1 → difficulty 2.
	// Bot latency must be visibly higher.
	if !(bot.Latency.Median() > ben.Latency.Median()) {
		t.Fatalf("bot median %.2fms not above benign median %.2fms",
			bot.Latency.Median(), ben.Latency.Median())
	}
	if res.PolicyName != "policy1" {
		t.Fatalf("PolicyName = %q", res.PolicyName)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	sc := smallScenario()
	a, err := Run(buildFramework(t, sc, policy.Policy1()), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildFramework(t, sc, policy.Policy1()), sc)
	if err != nil {
		t.Fatal(err)
	}
	for kind := range a.ByKind {
		if a.ByKind[kind].Served != b.ByKind[kind].Served ||
			a.ByKind[kind].Requests != b.ByKind[kind].Requests {
			t.Fatalf("kind %v differs across identical seeds", kind)
		}
	}
}

func TestIgnoreStrategyNeverServed(t *testing.T) {
	sc := smallScenario()
	sc.Specs[1].Strategy = StrategyIgnore
	sc.Specs[1].HashRate = 0 // legal for ignore
	fw := buildFramework(t, sc, policy.Policy1())
	res, err := Run(fw, sc)
	if err != nil {
		t.Fatal(err)
	}
	bot := res.ByKind[KindBot]
	if bot.Served != 0 {
		t.Fatalf("ignoring bots served %d times", bot.Served)
	}
	if bot.Challenged == 0 {
		t.Fatal("ignoring bots never challenged")
	}
	if bot.SolveAttempts != 0 {
		t.Fatal("ignoring bots expended solve work")
	}
}

func TestGiveUpStrategy(t *testing.T) {
	sc := smallScenario()
	sc.Specs[1].Strategy = StrategyGiveUpAbove
	sc.Specs[1].GiveUpAt = 5 // bots get difficulty 10 → always give up
	fw := buildFramework(t, sc, policy.Policy1())
	res, err := Run(fw, sc)
	if err != nil {
		t.Fatal(err)
	}
	bot := res.ByKind[KindBot]
	if bot.Served != 0 || bot.GaveUp == 0 {
		t.Fatalf("give-up bots: served=%d gaveUp=%d", bot.Served, bot.GaveUp)
	}
	// Benign clients (difficulty 2) still get served.
	if res.ByKind[KindBenign].Served == 0 {
		t.Fatal("benign starved")
	}
}

func TestQueueCapDropsUnderFlood(t *testing.T) {
	sc := Scenario{
		Duration: 10 * time.Second,
		Specs: []ClientSpec{
			{Kind: KindBot, Count: 50, RequestRate: 10, HashRate: 1e6, Strategy: StrategySolve},
		},
		Link:       netsim.Link{OneWay: time.Millisecond},
		IssueTime:  5 * time.Millisecond, // deliberately slow server
		VerifyTime: 5 * time.Millisecond,
		QueueCap:   10,
		Seed:       3,
	}
	fw := buildFramework(t, sc, policy.Policy1())
	res, err := Run(fw, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerDropped == 0 {
		t.Fatal("overloaded bounded queue dropped nothing")
	}
	if res.PeakQueue != 10 {
		t.Fatalf("PeakQueue = %d, want cap 10", res.PeakQueue)
	}
	if res.ByKind[KindBot].Dropped == 0 {
		t.Fatal("client-side drop accounting missing")
	}
}

func TestGoodputAccessor(t *testing.T) {
	sc := smallScenario()
	fw := buildFramework(t, sc, policy.Policy1())
	res, err := Run(fw, sc)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Goodput(KindBenign, sc.Duration)
	want := float64(res.ByKind[KindBenign].Served) / sc.Duration.Seconds()
	if g != want {
		t.Fatalf("Goodput = %v, want %v", g, want)
	}
	if res.Goodput(Kind(99), sc.Duration) != 0 {
		t.Fatal("unknown kind goodput should be 0")
	}
}

func TestKindString(t *testing.T) {
	if KindBenign.String() != "benign" || KindBot.String() != "bot" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
