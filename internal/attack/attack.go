// Package attack simulates DDoS scenarios against a framework-protected
// server: populations of benign clients and bots with Poisson arrivals,
// per-client hash rates, and challenge-response strategies, all running on
// the deterministic netsim event loop.
//
// The simulation drives the real core.Framework decision path (feature
// lookup → AI scoring → policy → challenge issuance) for every request.
// Solving is *modeled* — the solve duration is sampled from the same
// geometric process a real solver executes (netsim.SimSolver) instead of
// burning billions of real SHA-256 evaluations — and verification is
// modeled as server service time. The cryptographic correctness of solving
// and verification is covered by the puzzle package's tests; what this
// package measures is what the paper cares about: who gets served, at what
// latency, and at what cost, under attack.
package attack

import (
	"fmt"
	"math/rand/v2"
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/metrics"
	"aipow/internal/netsim"
)

// Kind labels a client population.
type Kind int

// Client population kinds.
const (
	// KindBenign models legitimate users: low request rates, modest CPUs,
	// willing to solve whatever is asked.
	KindBenign Kind = iota + 1

	// KindBot models attack traffic: high request rates and a strategy
	// chosen by the attacker.
	KindBot
)

// String renders the kind for tables.
func (k Kind) String() string {
	switch k {
	case KindBenign:
		return "benign"
	case KindBot:
		return "bot"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Strategy describes how a client reacts to receiving a challenge.
type Strategy int

// Challenge-response strategies.
const (
	// StrategySolve always solves, whatever the difficulty.
	StrategySolve Strategy = iota + 1

	// StrategyIgnore never solves: the attacker just floods initial
	// requests, hoping issuance alone exhausts the server.
	StrategyIgnore

	// StrategyGiveUpAbove solves only puzzles at or below GiveUpAt —
	// the rational attacker bounding per-request spend.
	StrategyGiveUpAbove
)

// ClientSpec describes one homogeneous client population.
type ClientSpec struct {
	// Kind classifies the population for reporting.
	Kind Kind

	// Count is the number of clients.
	Count int

	// RequestRate is each client's Poisson arrival rate (requests/s).
	// Used by open-loop populations only.
	RequestRate float64

	// ClosedLoop switches the population from open-loop Poisson arrivals
	// to closed-loop behavior: each client keeps one request in flight and
	// issues the next one ThinkTime after the previous completes (or is
	// abandoned). This is how PoW throttles attackers — inflicted latency
	// directly caps a closed-loop client's achievable request rate, the
	// paper's "slow down the incoming malicious traffic".
	ClosedLoop bool

	// ThinkTime is the closed-loop pause between a request's outcome and
	// the next request. Zero models a maximally aggressive bot.
	ThinkTime time.Duration

	// RetryBackoff is how long a closed-loop client waits after the server
	// drops its request (full queue) before retrying. Zero defaults to
	// 100 ms.
	RetryBackoff time.Duration

	// HashRate is each client's solver throughput (hashes/s).
	HashRate float64

	// Strategy is the challenge response behavior.
	Strategy Strategy

	// GiveUpAt is the maximum difficulty StrategyGiveUpAbove will solve.
	GiveUpAt int
}

// validate rejects inconsistent specs.
func (s ClientSpec) validate() error {
	if s.Count < 0 {
		return fmt.Errorf("attack: negative client count %d", s.Count)
	}
	if s.Count > 0 && !s.ClosedLoop && s.RequestRate <= 0 {
		return fmt.Errorf("attack: open-loop population needs a positive request rate, got %v", s.RequestRate)
	}
	if s.ThinkTime < 0 || s.RetryBackoff < 0 {
		return fmt.Errorf("attack: negative think time or retry backoff")
	}
	switch s.Strategy {
	case StrategySolve, StrategyGiveUpAbove:
		if s.HashRate <= 0 {
			return fmt.Errorf("attack: solving strategy needs a positive hash rate")
		}
	case StrategyIgnore:
	default:
		return fmt.Errorf("attack: unknown strategy %d", s.Strategy)
	}
	return nil
}

// Scenario is a full experiment description.
type Scenario struct {
	// Duration is the simulated time span.
	Duration time.Duration

	// Specs lists the client populations.
	Specs []ClientSpec

	// Link models the client↔server network.
	Link netsim.Link

	// IssueTime and VerifyTime are the server-side service times for
	// challenge issuance and solution verification respectively.
	IssueTime, VerifyTime time.Duration

	// QueueCap bounds the server queue; arrivals beyond it are dropped.
	// Zero or negative means unbounded.
	QueueCap int

	// Seed drives every random draw in the scenario.
	Seed uint64
}

// validate rejects inconsistent scenarios.
func (sc Scenario) validate() error {
	if sc.Duration <= 0 {
		return fmt.Errorf("attack: non-positive duration %v", sc.Duration)
	}
	if len(sc.Specs) == 0 {
		return fmt.Errorf("attack: scenario has no client populations")
	}
	for i, spec := range sc.Specs {
		if err := spec.validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
	}
	if err := sc.Link.Validate(); err != nil {
		return err
	}
	if sc.IssueTime < 0 || sc.VerifyTime < 0 {
		return fmt.Errorf("attack: negative server service time")
	}
	return nil
}

// ClientIPs returns the deterministic IP addresses Run assigns to each
// spec's clients, so callers can pre-register attributes for them in the
// feature store. Addressing: client j of spec i gets "10.<i>.<j/250>.<j%250+1>".
func (sc Scenario) ClientIPs() [][]string {
	out := make([][]string, len(sc.Specs))
	for i, spec := range sc.Specs {
		ips := make([]string, spec.Count)
		for j := 0; j < spec.Count; j++ {
			ips[j] = clientIP(i, j)
		}
		out[i] = ips
	}
	return out
}

func clientIP(spec, idx int) string {
	return fmt.Sprintf("10.%d.%d.%d", spec, idx/250, idx%250+1)
}

// ClassStats aggregates outcomes for one client kind.
type ClassStats struct {
	// Requests is the number of initial requests sent.
	Requests uint64

	// Challenged counts challenges received.
	Challenged uint64

	// Served counts completed request→response cycles.
	Served uint64

	// GaveUp counts challenges abandoned by strategy.
	GaveUp uint64

	// Dropped counts requests or solutions lost to a full server queue.
	Dropped uint64

	// SolveAttempts is the total hash work expended (modeled attempts).
	SolveAttempts float64

	// Latency collects end-to-end latencies of served requests, in ms.
	Latency *metrics.Summary
}

// Result is the outcome of one scenario run.
type Result struct {
	// PolicyName echoes the framework's policy for tables.
	PolicyName string

	// ByKind maps each client kind to its aggregated stats.
	ByKind map[Kind]*ClassStats

	// ServerUtilization is the fraction of time the server was busy.
	ServerUtilization float64

	// PeakQueue is the maximum server backlog observed.
	PeakQueue int

	// ServerDropped counts jobs rejected by the full queue.
	ServerDropped uint64
}

// Goodput reports served requests per second for a kind.
func (r Result) Goodput(kind Kind, duration time.Duration) float64 {
	cs, ok := r.ByKind[kind]
	if !ok || duration <= 0 {
		return 0
	}
	return float64(cs.Served) / duration.Seconds()
}

// FrameworkFactory builds a framework wired to the simulation's virtual
// clock. Defenses whose state depends on time — behavioral trackers,
// challenge TTLs — must be constructed through it (core.WithClock(now)).
type FrameworkFactory func(now func() time.Time) (*core.Framework, error)

// Run executes the scenario against a pre-built framework. Use RunFactory
// instead when the defense needs the simulation clock.
func Run(fw *core.Framework, sc Scenario) (Result, error) {
	if fw == nil {
		return Result{}, fmt.Errorf("attack: nil framework")
	}
	return RunFactory(func(func() time.Time) (*core.Framework, error) { return fw, nil }, sc)
}

// RunFactory executes the scenario against a framework built on the
// simulation clock and reports per-class outcomes.
func RunFactory(build FrameworkFactory, sc Scenario) (Result, error) {
	if build == nil {
		return Result{}, fmt.Errorf("attack: nil framework factory")
	}
	if err := sc.validate(); err != nil {
		return Result{}, err
	}

	loop := netsim.NewEventLoop(netsim.Start())
	fw, err := build(loop.Clock().Now)
	if err != nil {
		return Result{}, fmt.Errorf("attack: build framework: %w", err)
	}
	if fw == nil {
		return Result{}, fmt.Errorf("attack: factory returned nil framework")
	}
	server, err := netsim.NewSimServer(loop, sc.QueueCap)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewPCG(sc.Seed, 0xC0FFEE))
	end := netsim.Start().Add(sc.Duration)

	res := Result{
		PolicyName: fw.PolicyName(),
		ByKind:     make(map[Kind]*ClassStats),
	}
	for _, spec := range sc.Specs {
		if _, ok := res.ByKind[spec.Kind]; !ok {
			res.ByKind[spec.Kind] = &ClassStats{Latency: metrics.NewSummary(1024)}
		}
	}

	// Schedule each client's arrival process: Poisson for open-loop
	// populations, a staggered first request for closed-loop ones.
	for i, spec := range sc.Specs {
		for j := 0; j < spec.Count; j++ {
			c := &simClient{
				ip:     clientIP(i, j),
				spec:   spec,
				stats:  res.ByKind[spec.Kind],
				loop:   loop,
				server: server,
				fw:     fw,
				sc:     sc,
				rng:    rng,
				end:    end,
			}
			if spec.ClosedLoop {
				// Stagger starts uniformly over the first second so the
				// fleet does not arrive as one synchronized spike.
				c.scheduleAt(time.Duration(rng.Float64() * float64(time.Second)))
			} else {
				c.scheduleNextArrival()
			}
		}
	}

	loop.RunUntil(end)
	res.ServerUtilization = server.Utilization()
	res.PeakQueue = server.PeakQueue()
	res.ServerDropped = server.Dropped()
	return res, nil
}

// simClient is the per-client state machine.
type simClient struct {
	ip     string
	spec   ClientSpec
	stats  *ClassStats
	loop   *netsim.EventLoop
	server *netsim.SimServer
	fw     *core.Framework
	sc     Scenario
	rng    *rand.Rand
	end    time.Time
}

// scheduleNextArrival draws the next open-loop Poisson arrival.
func (c *simClient) scheduleNextArrival() {
	gap := time.Duration(c.rng.ExpFloat64() / c.spec.RequestRate * float64(time.Second))
	c.scheduleAt(gap)
}

// scheduleAt schedules the next request after d, unless past the horizon.
func (c *simClient) scheduleAt(d time.Duration) {
	next := c.loop.Now().Add(d)
	if next.After(c.end) {
		return
	}
	// Scheduling in the future from "now" can only fail on programmer
	// error; surface it loudly.
	if err := c.loop.At(next, c.sendRequest); err != nil {
		panic(fmt.Sprintf("attack: schedule arrival: %v", err))
	}
}

// nextCycle schedules a closed-loop client's follow-up request. Open-loop
// clients drive themselves from sendRequest, so it is a no-op for them.
func (c *simClient) nextCycle(backoff bool) {
	if !c.spec.ClosedLoop {
		return
	}
	wait := c.spec.ThinkTime
	if backoff {
		wait = c.spec.RetryBackoff
		if wait == 0 {
			wait = 100 * time.Millisecond
		}
	}
	c.scheduleAt(wait)
}

// sendRequest is protocol step 1: the initial request leaves the client.
func (c *simClient) sendRequest() {
	c.stats.Requests++
	sentAt := c.loop.Now()
	if !c.spec.ClosedLoop {
		c.scheduleNextArrival() // open-loop traffic: next arrival regardless
	}

	c.after(c.sc.Link.Delay(c.rng), func() {
		// The request has arrived: feed the behavior tracker before any
		// queueing decision (observation is a cheap counter bump, so real
		// servers do it on arrival — dropped floods must still be seen,
		// or rate-based defenses would be blinded by their own overload).
		_ = c.fw.Observe(features.RequestInfo{IP: c.ip, Path: "/", At: c.loop.Now()})
		// Issuing consumes server capacity.
		accepted := c.server.Enqueue(netsim.Job{
			Service: c.sc.IssueTime,
			Done:    func() { c.handleDecision(sentAt) },
		})
		if !accepted {
			c.stats.Dropped++
			c.nextCycle(true)
		}
	})
}

// handleDecision runs steps 2–4 on the server, then routes the outcome.
func (c *simClient) handleDecision(sentAt time.Time) {
	dec, err := c.fw.Decide(core.RequestContext{IP: c.ip})
	if err != nil {
		// Issuance failure counts as a drop; the client hears nothing.
		c.stats.Dropped++
		c.nextCycle(true)
		return
	}
	if dec.Bypassed {
		c.after(c.sc.Link.Delay(c.rng), func() { c.completed(sentAt) })
		return
	}
	// Challenge travels back to the client.
	c.after(c.sc.Link.Delay(c.rng), func() { c.handleChallenge(sentAt, dec.Difficulty) })
}

// handleChallenge is step 5: the client decides whether and how to solve.
func (c *simClient) handleChallenge(sentAt time.Time, difficulty int) {
	c.stats.Challenged++
	switch c.spec.Strategy {
	case StrategyIgnore:
		c.nextCycle(false)
		return
	case StrategyGiveUpAbove:
		if difficulty > c.spec.GiveUpAt {
			c.stats.GaveUp++
			c.nextCycle(false)
			return
		}
	case StrategySolve:
	}
	solver := netsim.SimSolver{HashRate: c.spec.HashRate}
	attempts := solver.Attempts(difficulty, c.rng)
	c.stats.SolveAttempts += attempts
	solveTime := time.Duration(attempts / c.spec.HashRate * float64(time.Second))

	c.after(solveTime, func() {
		// Solution travels to the server; verification consumes capacity.
		c.after(c.sc.Link.Delay(c.rng), func() {
			accepted := c.server.Enqueue(netsim.Job{
				Service: c.sc.VerifyTime,
				Done: func() {
					// Response travels back (steps 6–7).
					c.after(c.sc.Link.Delay(c.rng), func() { c.completed(sentAt) })
				},
			})
			if !accepted {
				c.stats.Dropped++
				c.nextCycle(true)
			}
		})
	})
}

// completed records a served request.
func (c *simClient) completed(sentAt time.Time) {
	c.stats.Served++
	c.stats.Latency.ObserveDuration(c.loop.Now().Sub(sentAt))
	c.nextCycle(false)
}

// after schedules fn at now+d, tolerating events that land past the
// horizon (RunUntil simply won't execute them).
func (c *simClient) after(d time.Duration, fn func()) {
	if err := c.loop.After(d, fn); err != nil {
		panic(fmt.Sprintf("attack: schedule: %v", err))
	}
}
