package dataset

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAttributesCanonicalOrder(t *testing.T) {
	attrs := Attributes()
	if len(attrs) != 10 {
		t.Fatalf("schema has %d attributes, want 10", len(attrs))
	}
	for i := 1; i < len(attrs); i++ {
		if attrs[i-1].Name >= attrs[i].Name {
			t.Fatalf("schema not sorted: %q >= %q", attrs[i-1].Name, attrs[i].Name)
		}
	}
	for _, a := range attrs {
		if a.Min >= a.Max {
			t.Errorf("attribute %q has degenerate range [%v, %v]", a.Name, a.Min, a.Max)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero_n", Config{N: 0}},
		{"bad_fraction", Config{N: 10, MaliciousFraction: 1.5}},
		{"bad_overlap", Config{N: 10, Overlap: -0.1}},
		{"negative_noise", Config{N: 10, Noise: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 1000
	samples, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != cfg.N {
		t.Fatalf("got %d samples, want %d", len(samples), cfg.N)
	}
	schema := Attributes()
	nMal := 0
	for i, s := range samples {
		if s.Malicious {
			nMal++
			if s.Family == "" {
				t.Fatalf("sample %d malicious without family", i)
			}
		} else if s.Family != "" {
			t.Fatalf("sample %d benign with family %q", i, s.Family)
		}
		if len(s.Attrs) != len(schema) {
			t.Fatalf("sample %d has %d attrs, want %d", i, len(s.Attrs), len(schema))
		}
		for _, a := range schema {
			v, ok := s.Attrs[a.Name]
			if !ok {
				t.Fatalf("sample %d missing %q", i, a.Name)
			}
			if v < a.Min || v > a.Max {
				t.Fatalf("sample %d attr %q = %v outside [%v, %v]", i, a.Name, v, a.Min, a.Max)
			}
		}
	}
	wantMal := int(math.Round(float64(cfg.N) * cfg.MaliciousFraction))
	if nMal != wantMal {
		t.Fatalf("malicious count = %d, want %d", nMal, wantMal)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 200
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].IP != b[i].IP || a[i].Malicious != b[i].Malicious {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
		for k, v := range a[i].Attrs {
			if b[i].Attrs[k] != v {
				t.Fatalf("sample %d attr %q differs", i, k)
			}
		}
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].IP != c[i].IP {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGenerateOverlapSeparation(t *testing.T) {
	// With zero overlap the classes should be far apart; with full overlap
	// their attribute means should nearly coincide. Compare mean
	// blacklist_count gaps as a proxy for separation.
	gap := func(overlap float64) float64 {
		cfg := Config{N: 2000, MaliciousFraction: 0.5, Overlap: overlap, Noise: 0.2, Seed: 3}
		samples, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var malMean, benMean float64
		var malN, benN int
		for _, s := range samples {
			if s.Malicious {
				malMean += s.Attrs["blacklist_count"]
				malN++
			} else {
				benMean += s.Attrs["blacklist_count"]
				benN++
			}
		}
		return malMean/float64(malN) - benMean/float64(benN)
	}
	if g0, g1 := gap(0), gap(1); g0 < 2 || math.Abs(g1) > 0.5 || g1 >= g0 {
		t.Fatalf("overlap knob not separating classes: gap(0)=%v gap(1)=%v", g0, g1)
	}
}

func TestSplitPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 100
	samples, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	train, test := Split(samples, 0.8, rng)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split sizes = %d/%d, want 80/20", len(train), len(test))
	}
	seen := make(map[string]int)
	for _, s := range samples {
		seen[s.IP]++
	}
	for _, s := range append(append([]Sample{}, train...), test...) {
		seen[s.IP]--
	}
	for ip, n := range seen {
		if n != 0 {
			t.Fatalf("split is not a partition: ip %s count %d", ip, n)
		}
	}
}

// Property: Split never loses or duplicates samples for any fraction.
func TestSplitPartitionProperty(t *testing.T) {
	samples, err := Generate(Config{N: 50, MaliciousFraction: 0.3, Overlap: 0.5, Noise: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := func(fracRaw uint8) bool {
		frac := float64(fracRaw) / 255
		train, test := Split(samples, frac, rand.New(rand.NewPCG(uint64(fracRaw), 1)))
		return len(train)+len(test) == len(samples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIPv4Valid(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 200; i++ {
		ip := RandomIPv4(rng)
		if ip == "" {
			t.Fatal("empty IP")
		}
		switch ip[0] {
		case '0':
			t.Fatalf("IP with zero first octet: %s", ip)
		}
	}
}
