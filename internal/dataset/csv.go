package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csv layout: ip,label,family,<attributes in canonical order>.
const (
	colIP     = 0
	colLabel  = 1
	colFamily = 2
	colAttrs  = 3
)

// WriteCSV serializes samples with a header row. Attribute columns follow
// the canonical schema order from Attributes().
func WriteCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	schema := Attributes()
	header := []string{"ip", "label", "family"}
	for _, a := range schema {
		header = append(header, a.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(header))
	for i, s := range samples {
		row[colIP] = s.IP
		if s.Malicious {
			row[colLabel] = "malicious"
		} else {
			row[colLabel] = "benign"
		}
		row[colFamily] = s.Family
		for j, a := range schema {
			v, ok := s.Attrs[a.Name]
			if !ok {
				return fmt.Errorf("dataset: sample %d missing attribute %q", i, a.Name)
			}
			row[colAttrs+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset previously written by WriteCSV. Unknown
// attribute columns are preserved; missing schema columns are an error only
// if a row references them, so the format tolerates schema evolution.
func ReadCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < colAttrs {
		return nil, fmt.Errorf("dataset: header too short: %v", header)
	}
	if header[colIP] != "ip" || header[colLabel] != "label" || header[colFamily] != "family" {
		return nil, fmt.Errorf("dataset: unexpected header prefix: %v", header[:colAttrs])
	}
	var samples []Sample
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(row), len(header))
		}
		s := Sample{
			IP:     row[colIP],
			Family: row[colFamily],
			Attrs:  make(map[string]float64, len(header)-colAttrs),
		}
		switch row[colLabel] {
		case "malicious":
			s.Malicious = true
		case "benign":
			s.Malicious = false
		default:
			return nil, fmt.Errorf("dataset: line %d has unknown label %q", line, row[colLabel])
		}
		for j := colAttrs; j < len(header); j++ {
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d attribute %q: %w", line, header[j], err)
			}
			s.Attrs[header[j]] = v
		}
		samples = append(samples, s)
	}
	return samples, nil
}
