package dataset

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 50
	samples, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("round trip lost samples: %d -> %d", len(samples), len(got))
	}
	for i := range samples {
		if got[i].IP != samples[i].IP || got[i].Malicious != samples[i].Malicious ||
			got[i].Family != samples[i].Family {
			t.Fatalf("sample %d metadata mismatch: %+v vs %+v", i, got[i], samples[i])
		}
		for k, v := range samples[i].Attrs {
			if got[i].Attrs[k] != v {
				t.Fatalf("sample %d attr %q: %v != %v", i, k, got[i].Attrs[k], v)
			}
		}
	}
}

func TestWriteCSVMissingAttribute(t *testing.T) {
	s := Sample{IP: "1.2.3.4", Attrs: map[string]float64{"spam_ratio": 1}}
	var b strings.Builder
	if err := WriteCSV(&b, []Sample{s}); err == nil {
		t.Fatal("sample missing attributes accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad_header", "a,b,c\n"},
		{"short_header", "ip\n"},
		{"bad_label", "ip,label,family,spam_ratio\n1.1.1.1,weird,,0.5\n"},
		{"bad_float", "ip,label,family,spam_ratio\n1.1.1.1,benign,,notanumber\n"},
		{"ragged_row_rejected_by_csv", "ip,label,family,spam_ratio\n1.1.1.1,benign\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Fatal("malformed CSV accepted")
			}
		})
	}
}

func TestReadCSVPreservesUnknownColumns(t *testing.T) {
	in := "ip,label,family,custom_attr\n9.9.9.9,malicious,botx,42\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Attrs["custom_attr"] != 42 {
		t.Fatalf("unknown column lost: %+v", got)
	}
	if !got[0].Malicious || got[0].Family != "botx" {
		t.Fatalf("metadata mismatch: %+v", got[0])
	}
}
