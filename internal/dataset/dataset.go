// Package dataset generates and serializes labeled IP-attribute datasets in
// the style of the Cisco Talos feeds that DAbR (Renjan et al., ISI 2018) —
// the paper's AI model — was trained on.
//
// The real feeds are proprietary, so this package synthesizes the closest
// equivalent that exercises the same code path (documented in DESIGN.md §4):
// each IP carries a vector of numeric attributes; benign IPs cluster around
// benign attribute profiles, while malicious IPs cluster around a small
// number of "family" profiles (spam farm, scanner, DDoS bot). A single
// Overlap knob slides the malicious profiles toward the benign one, which
// directly controls how separable the classes are and therefore the
// accuracy any distance-based scorer can reach. The reproduction tunes
// Overlap so DAbR's reported ~80% accuracy emerges (experiment E3).
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"
)

// Attribute describes one numeric IP attribute: its name and legal range.
type Attribute struct {
	Name     string
	Min, Max float64
}

// Attributes returns the attribute schema in canonical (sorted-by-name)
// order. The ranges are used both for clamping generated values and for
// documentation; scorers normalize from training data, not from these.
func Attributes() []Attribute {
	attrs := []Attribute{
		{Name: "blacklist_count", Min: 0, Max: 20},
		{Name: "conn_failure_ratio", Min: 0, Max: 1},
		{Name: "email_volume", Min: 0, Max: 10000},
		{Name: "fwd_rev_dns_mismatch", Min: 0, Max: 1},
		{Name: "geo_risk", Min: 0, Max: 1},
		{Name: "mean_inter_arrival_ms", Min: 0, Max: 5000},
		{Name: "open_ports_count", Min: 0, Max: 64},
		{Name: "payload_entropy", Min: 0, Max: 8},
		{Name: "spam_ratio", Min: 0, Max: 1},
		{Name: "web_reputation", Min: 0, Max: 100},
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	return attrs
}

// Sample is one labeled IP observation.
type Sample struct {
	// IP is the observed address in string form.
	IP string

	// Attrs maps attribute name to value, covering every schema attribute.
	Attrs map[string]float64

	// Malicious is the ground-truth label.
	Malicious bool

	// Family names the malicious profile that generated the sample, or ""
	// for benign samples. It is metadata for analysis, not a model input.
	Family string
}

// Config parameterizes Generate.
type Config struct {
	// N is the total number of samples.
	N int

	// MaliciousFraction is the fraction of samples drawn from malicious
	// families, in [0, 1].
	MaliciousFraction float64

	// Overlap slides malicious attribute profiles toward the benign
	// profile: 0 keeps them fully separated, 1 makes them identical.
	// The calibrated 0.58 yields the 80% scorer accuracy DAbR reports.
	Overlap float64

	// Noise scales the per-attribute standard deviation. 1 is the
	// calibrated default; 0 produces degenerate point clusters.
	Noise float64

	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultConfig returns the configuration used by experiment E3.
func DefaultConfig() Config {
	return Config{N: 5000, MaliciousFraction: 0.35, Overlap: 0.58, Noise: 1, Seed: 1}
}

// validate rejects configurations that cannot generate a coherent dataset.
func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("dataset: N must be positive, got %d", c.N)
	}
	if c.MaliciousFraction < 0 || c.MaliciousFraction > 1 {
		return fmt.Errorf("dataset: malicious fraction %v not in [0,1]", c.MaliciousFraction)
	}
	if c.Overlap < 0 || c.Overlap > 1 {
		return fmt.Errorf("dataset: overlap %v not in [0,1]", c.Overlap)
	}
	if c.Noise < 0 {
		return fmt.Errorf("dataset: negative noise %v", c.Noise)
	}
	return nil
}

// profile is a mean/stddev pair per attribute (in attribute units).
type profile struct {
	name   string
	means  map[string]float64
	stddev map[string]float64
}

// benignProfile models ordinary client IPs: low volume, good reputation.
func benignProfile() profile {
	return profile{
		name: "",
		means: map[string]float64{
			"blacklist_count":       0.2,
			"conn_failure_ratio":    0.05,
			"email_volume":          120,
			"fwd_rev_dns_mismatch":  0.08,
			"geo_risk":              0.15,
			"mean_inter_arrival_ms": 2400,
			"open_ports_count":      3,
			"payload_entropy":       3.5,
			"spam_ratio":            0.03,
			"web_reputation":        82,
		},
		stddev: map[string]float64{
			"blacklist_count":       0.6,
			"conn_failure_ratio":    0.05,
			"email_volume":          160,
			"fwd_rev_dns_mismatch":  0.08,
			"geo_risk":              0.12,
			"mean_inter_arrival_ms": 900,
			"open_ports_count":      2.2,
			"payload_entropy":       0.9,
			"spam_ratio":            0.04,
			"web_reputation":        10,
		},
	}
}

// maliciousProfiles model the three attack families the framework's intro
// motivates. Their stddevs are wider than benign: compromised fleets are
// heterogeneous.
func maliciousProfiles() []profile {
	shared := map[string]float64{
		"blacklist_count":       2.8,
		"conn_failure_ratio":    0.16,
		"email_volume":          1500,
		"fwd_rev_dns_mismatch":  0.25,
		"geo_risk":              0.25,
		"mean_inter_arrival_ms": 700,
		"open_ports_count":      8,
		"payload_entropy":       1.6,
		"spam_ratio":            0.18,
		"web_reputation":        16,
	}
	spam := profile{
		name: "spam_farm",
		means: map[string]float64{
			"blacklist_count":       9,
			"conn_failure_ratio":    0.25,
			"email_volume":          6200,
			"fwd_rev_dns_mismatch":  0.7,
			"geo_risk":              0.55,
			"mean_inter_arrival_ms": 420,
			"open_ports_count":      7,
			"payload_entropy":       4.2,
			"spam_ratio":            0.8,
			"web_reputation":        18,
		},
		stddev: shared,
	}
	scanner := profile{
		name: "scanner",
		means: map[string]float64{
			"blacklist_count":       5,
			"conn_failure_ratio":    0.85,
			"email_volume":          60,
			"fwd_rev_dns_mismatch":  0.5,
			"geo_risk":              0.6,
			"mean_inter_arrival_ms": 40,
			"open_ports_count":      38,
			"payload_entropy":       2.2,
			"spam_ratio":            0.06,
			"web_reputation":        25,
		},
		stddev: shared,
	}
	bot := profile{
		name: "ddos_bot",
		means: map[string]float64{
			"blacklist_count":       7,
			"conn_failure_ratio":    0.45,
			"email_volume":          300,
			"fwd_rev_dns_mismatch":  0.6,
			"geo_risk":              0.7,
			"mean_inter_arrival_ms": 15,
			"open_ports_count":      14,
			"payload_entropy":       7.2,
			"spam_ratio":            0.1,
			"web_reputation":        12,
		},
		stddev: shared,
	}
	return []profile{spam, scanner, bot}
}

// Generate produces a labeled dataset under cfg. The output order is
// shuffled (labels are not grouped).
func Generate(cfg Config) ([]Sample, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9E3779B97F4A7C15))
	schema := Attributes()
	benign := benignProfile()
	families := maliciousProfiles()

	nMal := int(math.Round(float64(cfg.N) * cfg.MaliciousFraction))
	samples := make([]Sample, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		malicious := i < nMal
		var p profile
		if malicious {
			p = families[rng.IntN(len(families))]
		} else {
			p = benign
		}
		attrs := make(map[string]float64, len(schema))
		for _, a := range schema {
			mean := p.means[a.Name]
			if malicious {
				// Slide the malicious mean toward benign by Overlap.
				mean = benign.means[a.Name] + (mean-benign.means[a.Name])*(1-cfg.Overlap)
			}
			sd := p.stddev[a.Name] * cfg.Noise
			v := mean + rng.NormFloat64()*sd
			attrs[a.Name] = clamp(v, a.Min, a.Max)
		}
		samples = append(samples, Sample{
			IP:        RandomIPv4(rng),
			Attrs:     attrs,
			Malicious: malicious,
			Family:    p.name,
		})
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	return samples, nil
}

// Split partitions samples into train and test sets with the given train
// fraction, shuffling with rng first. The input slice is not modified.
func Split(samples []Sample, trainFrac float64, rng *rand.Rand) (train, test []Sample) {
	shuffled := make([]Sample, len(samples))
	copy(shuffled, samples)
	if rng != nil {
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
	}
	cut := int(math.Round(float64(len(shuffled)) * clamp(trainFrac, 0, 1)))
	return shuffled[:cut], shuffled[cut:]
}

// RandomIPv4 returns a random globally-routable-looking IPv4 address,
// avoiding reserved first octets so examples read realistically.
func RandomIPv4(rng *rand.Rand) string {
	for {
		a := byte(1 + rng.IntN(222))
		if a == 10 || a == 127 || a == 172 || a == 192 {
			continue // skip common reserved/private first octets
		}
		addr := netip.AddrFrom4([4]byte{a, byte(rng.IntN(256)), byte(rng.IntN(256)), byte(1 + rng.IntN(254))})
		return addr.String()
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
