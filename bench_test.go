package aipow_test

// Benchmarks, one per paper artifact plus the ablations DESIGN.md commits
// to (regenerate everything with `go test -bench=. -benchmem`):
//
//	BenchmarkFig2            E1  Figure 2 (full regeneration per iteration)
//	BenchmarkSolveTime/d=N   E2  real SHA-256 solving per difficulty
//	BenchmarkAccuracy        E3  dataset → train → evaluate cycle
//	BenchmarkAttack          E4  DDoS comparison scenario
//	BenchmarkEpsilonSweep    E5  Policy 3 ε sweep
//	BenchmarkAsymmetry*      E6  server-side vs client-side cost per op
//
// The CLI `powexp` prints the corresponding tables; these benches measure
// the cost of producing them and (for E2/E6) the real cryptographic work.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aipow"
	"aipow/internal/experiments"
)

func BenchmarkFig2(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveTime measures genuine SHA-256 puzzle solving on this host
// per difficulty — the real-hardware check of E2's exponential shape.
// ns/op should roughly double per difficulty step.
func BenchmarkSolveTime(b *testing.B) {
	issuer, err := aipow.NewIssuer(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	solver := aipow.NewSolver()
	for _, d := range []int{1, 4, 8, 12, 16, 20} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			var hashes uint64
			for i := 0; i < b.N; i++ {
				ch, err := issuer.Issue("bench-client", d)
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := solver.Solve(context.Background(), ch)
				if err != nil {
					b.Fatal(err)
				}
				hashes += stats.Attempts
			}
			b.ReportMetric(float64(hashes)/float64(b.N), "hashes/op")
		})
	}
}

func BenchmarkAccuracy(b *testing.B) {
	cfg := experiments.DefaultAccuracyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAccuracy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttack(b *testing.B) {
	cfg := experiments.DefaultAttackConfig()
	// Scale the scenario down so one iteration stays in benchmark range
	// while preserving the 1:9 benign:bot ratio.
	cfg.Scenario.Duration = 10 * time.Second
	cfg.Scenario.Specs[0].Count = 20
	cfg.Scenario.Specs[1].Count = 180
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAttack(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpsilonSweep(b *testing.B) {
	cfg := experiments.DefaultEpsilonConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEpsilon(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashrateSweep(b *testing.B) {
	cfg := experiments.DefaultHashrateConfig()
	cfg.Scenario.Duration = 10 * time.Second
	cfg.Scenario.Specs[0].Count = 10
	cfg.Scenario.Specs[1].Count = 90
	cfg.Multipliers = []float64{1, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunHashrate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

var benchKey = []byte("benchmark-hmac-key-32-bytes-long")

// BenchmarkAsymmetryIssue measures the server-side cost of generating one
// challenge (E6: it must be orders of magnitude below solving).
func BenchmarkAsymmetryIssue(b *testing.B) {
	issuer, err := aipow.NewIssuer(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := issuer.Issue("203.0.113.9", 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsymmetryVerify measures the server-side cost of verifying one
// solution — one HMAC plus one hash, independent of difficulty.
func BenchmarkAsymmetryVerify(b *testing.B) {
	issuer, err := aipow.NewIssuer(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	// No replay cache: measuring pure verification cost.
	verifier, err := aipow.NewVerifier(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := issuer.Issue("203.0.113.9", 8)
	if err != nil {
		b.Fatal(err)
	}
	sol, _, err := aipow.NewSolver().Solve(context.Background(), ch)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := verifier.Verify(sol, "203.0.113.9"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsymmetryScore measures the AI-model cost per request.
func BenchmarkAsymmetryScore(b *testing.B) {
	data, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		b.Fatal(err)
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data))
	if err != nil {
		b.Fatal(err)
	}
	attrs := data[0].Attrs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Score(attrs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFramework assembles the standard Decide pipeline used by the
// asymmetry and parallel-scaling benchmarks: trained reputation model over
// the synthetic dataset, Policy 2, static map store. Callbacks receive the
// store and may return options that extend or override the base wiring
// (later options win).
func benchFramework(b *testing.B, extra ...func(store *aipow.MapStore) []aipow.Option) *aipow.Framework {
	b.Helper()
	data, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		b.Fatal(err)
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data))
	if err != nil {
		b.Fatal(err)
	}
	store, err := aipow.NewMapStore(data[0].Attrs)
	if err != nil {
		b.Fatal(err)
	}
	opts := []aipow.Option{
		aipow.WithKey(benchKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy2()),
		aipow.WithSource(store),
	}
	for _, fn := range extra {
		opts = append(opts, fn(store)...)
	}
	fw, err := aipow.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	return fw
}

// BenchmarkAsymmetryDecide measures the whole server-side decision path:
// attribute lookup → scoring → policy → challenge issuance.
func BenchmarkAsymmetryDecide(b *testing.B) {
	fw := benchFramework(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideTraced measures the decision path with a sampled
// decision-trace ring attached at the default 1-in-1024 rate. The
// unsampled iterations — all but ~0.1% — pay one atomic increment and
// one branch; the sampled ones write a fixed-size record into a
// preallocated slot. Both must stay allocation-free, and the aggregate
// ns/op must sit within a few percent of plain Decide (benchdump gates
// the ratio).
func BenchmarkDecideTraced(b *testing.B) {
	fw := benchFramework(b, func(store *aipow.MapStore) []aipow.Option {
		return []aipow.Option{aipow.WithObserveTrace(aipow.NewTraceRing(1024, 256))}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideParallel measures the serving path under GOMAXPROCS-way
// concurrency — the millions-of-users shape: every iteration feeds the
// behavior tracker (Observe) and runs the decision over the combined
// static+live source, so the sharded tracker, pooled HMAC state, and
// pre-resolved counters are all on the measured path. Per-op time should
// stay near the serial figure instead of collapsing onto a global lock.
func BenchmarkDecideParallel(b *testing.B) {
	tracker, err := aipow.NewTracker()
	if err != nil {
		b.Fatal(err)
	}
	fw := benchFramework(b, func(store *aipow.MapStore) []aipow.Option {
		source, err := aipow.NewCombinedSource(store, tracker)
		if err != nil {
			b.Fatal(err)
		}
		return []aipow.Option{aipow.WithSource(source), aipow.WithTracker(tracker)}
	})
	at := time.Unix(1000, 0)
	for _, ip := range benchIPs { // pre-seed per-IP state
		if err := fw.Observe(aipow.RequestInfo{IP: ip, Path: "/api", At: at}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ip := benchIPs[i%len(benchIPs)]
			i++
			if err := fw.Observe(aipow.RequestInfo{IP: ip, Path: "/api", At: at}); err != nil {
				b.Error(err) // Fatal must not run off the benchmark goroutine
				return
			}
			if _, err := fw.Decide(aipow.RequestContext{IP: ip}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkDecideUnderSwap measures the decision path while a background
// goroutine hot-swaps the policy through Framework.Swap at a realistic
// control-plane cadence (~1 kHz, far above any real operator's). The
// serving path must stay allocation-free and within a few percent of the
// plain Decide figure: Decide reads the configuration with one atomic
// snapshot load, so swap churn costs it nothing.
func BenchmarkDecideUnderSwap(b *testing.B) {
	fw := benchFramework(b)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pol := aipow.Policy2()
			if i%2 == 1 {
				pol = aipow.Policy1()
			}
			if err := fw.SwapPolicy(pol); err != nil {
				b.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkDecideUnderAdapt measures the decision path with the
// closed-loop feedback subsystem attached and stepping at ~1 kHz (far
// above the default 1 Hz controller cadence). The signal plane reads the
// pipeline's counters by polling — the serving path contributes nothing
// beyond its usual atomic counter increments — so Decide must stay
// allocation-free at an unchanged ns/op class.
func BenchmarkDecideUnderAdapt(b *testing.B) {
	data, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		b.Fatal(err)
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data))
	if err != nil {
		b.Fatal(err)
	}
	store, err := aipow.NewMapStore(data[0].Attrs)
	if err != nil {
		b.Fatal(err)
	}
	registry, err := aipow.NewComponentRegistry(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	if err := registry.RegisterScorer("model", func(params map[string]float64) (aipow.Scorer, error) {
		return model, nil
	}); err != nil {
		b.Fatal(err)
	}
	if err := registry.RegisterSource("store", func(params map[string]float64, _ *aipow.Tracker) (aipow.AttributeSource, error) {
		return store, nil
	}); err != nil {
		b.Fatal(err)
	}
	dep, err := aipow.ParseDeployment(`
pipeline bench
  scorer model
  source store
  policy policy2
  adapt capacity 1000000
  adapt interval 1ms
  adapt escalate(when=rate>1e12, policy=policy1, hold=1s)
`)
	if err != nil {
		b.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(registry, dep)
	if err != nil {
		b.Fatal(err)
	}
	fw := gk.Route("/", "")

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := gk.StepControllers(time.Now()); err != nil {
				b.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkDecideWithEvidence measures the confidence-carrying serving
// path end to end with the behavioral-evidence loop closed: Observe feeds
// the tracker, Decide runs the redemption-wrapped verdict scorer under a
// confidence-shaped policy over the combined source, and Verify writes
// solve evidence back into the tracker. Every layer the scoring-verdict
// refactor added sits on this path, and all of it must stay
// allocation-free.
func BenchmarkDecideWithEvidence(b *testing.B) {
	fw := evidenceFramework(b)
	const ip = "198.51.100.1"
	at := time.Unix(1000, 0)
	if err := fw.Observe(aipow.RequestInfo{IP: ip, Path: "/api", At: at}); err != nil {
		b.Fatal(err)
	}
	dec, err := fw.Decide(aipow.RequestContext{IP: ip})
	if err != nil {
		b.Fatal(err)
	}
	sol, _, err := aipow.NewSolver().Solve(context.Background(), dec.Challenge)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fw.Observe(aipow.RequestInfo{IP: ip, Path: "/api", At: at}); err != nil {
			b.Fatal(err)
		}
		if _, err := fw.Decide(aipow.RequestContext{IP: ip}); err != nil {
			b.Fatal(err)
		}
		if err := fw.Verify(sol, ip); err != nil {
			b.Fatal(err)
		}
	}
}

// evidenceFramework assembles the recommended production serving
// configuration the evidence benchmarks measure: redemption-wrapped
// verdict scorer, confidence-shaped policy, combined static+tracker
// source, buffered evidence write-back, and bounded-staleness summary
// caching. Replay protection is off so one pre-solved challenge can be
// redeemed repeatedly, like the pure-verification benchmarks.
func evidenceFramework(b *testing.B) *aipow.Framework {
	b.Helper()
	tracker, err := aipow.NewTracker(aipow.WithSummaryStaleness(2 * time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	fw := benchFramework(b, func(store *aipow.MapStore) []aipow.Option {
		redeem, err := aipow.NewRedemptionScorer(mustModel(b))
		if err != nil {
			b.Fatal(err)
		}
		shaped, err := aipow.NewConfidenceShapedPolicy(aipow.Policy2(), 5, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		source, err := aipow.NewCombinedSource(store, tracker)
		if err != nil {
			b.Fatal(err)
		}
		return []aipow.Option{
			aipow.WithScorer(redeem),
			aipow.WithPolicy(shaped),
			aipow.WithSource(source),
			aipow.WithTracker(tracker),
			aipow.WithEvidenceBuffer(64, time.Millisecond),
			aipow.WithReplayCacheSize(0),
		}
	})
	b.Cleanup(func() { fw.Close() })
	return fw
}

// BenchmarkDecideBatch measures the same full evidence loop through the
// batch front door — ObserveBatch, DecideBatch, VerifyBatch over
// 64-request batches — at per-request granularity (b.N counts requests,
// not batches), so its ns/op is directly comparable to
// BenchmarkDecideWithEvidence and gated below it: the batch path amortizes
// the snapshot load, clock reads, scratch checkout, shard locking, and
// seed entropy across the batch.
func BenchmarkDecideBatch(b *testing.B) {
	fw := evidenceFramework(b)
	const size = 64
	at := time.Unix(1000, 0)
	reqs := make([]aipow.RequestContext, size)
	obs := make([]aipow.RequestInfo, size)
	bindings := make([]string, size)
	for i := range reqs {
		ip := benchIPs[i%len(benchIPs)]
		reqs[i] = aipow.RequestContext{IP: ip}
		obs[i] = aipow.RequestInfo{IP: ip, Path: "/api", At: at}
		bindings[i] = ip
	}
	if err := fw.ObserveBatch(obs); err != nil {
		b.Fatal(err)
	}
	decs, err := fw.DecideBatch(reqs, nil)
	if err != nil {
		b.Fatal(err)
	}
	// One pre-solved challenge per distinct client, redeemed repeatedly.
	sols := make([]aipow.Solution, size)
	solver := aipow.NewSolver()
	for i := range sols {
		if i < len(benchIPs) {
			sol, _, err := solver.Solve(context.Background(), decs[i].Challenge)
			if err != nil {
				b.Fatal(err)
			}
			sols[i] = sol
		} else {
			sols[i] = sols[i%len(benchIPs)]
		}
	}
	verrs := make([]error, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += size {
		n := min(size, b.N-i)
		if err := fw.ObserveBatch(obs[:n]); err != nil {
			b.Fatal(err)
		}
		if decs, err = fw.DecideBatch(reqs[:n], decs); err != nil {
			b.Fatal(err)
		}
		if verrs, err = fw.VerifyBatch(sols[:n], bindings[:n], verrs); err != nil {
			b.Fatal(err)
		}
		for _, verr := range verrs {
			if verr != nil {
				b.Fatal(verr)
			}
		}
	}
}

// mustModel trains the benchmark reputation model (cached per run would
// not matter: training is outside every timer).
func mustModel(b *testing.B) *aipow.ReputationModel {
	b.Helper()
	data, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		b.Fatal(err)
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data))
	if err != nil {
		b.Fatal(err)
	}
	return model
}

// BenchmarkVerifyParallel measures concurrent solution verification (no
// replay cache, matching BenchmarkAsymmetryVerify's pure-verification
// setup).
func BenchmarkVerifyParallel(b *testing.B) {
	issuer, err := aipow.NewIssuer(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	verifier, err := aipow.NewVerifier(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := issuer.Issue("203.0.113.9", 8)
	if err != nil {
		b.Fatal(err)
	}
	sol, _, err := aipow.NewSolver().Solve(context.Background(), ch)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := verifier.Verify(sol, "203.0.113.9"); err != nil {
				b.Error(err) // Fatal must not run off the benchmark goroutine
				return
			}
		}
	})
}

// benchIPs spreads parallel decisions over a handful of clients so shard
// striping and per-IP state are actually exercised.
var benchIPs = []string{
	"198.51.100.1", "198.51.100.2", "198.51.100.3", "198.51.100.4",
	"203.0.113.5", "203.0.113.6", "203.0.113.7", "203.0.113.8",
}
