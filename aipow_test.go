package aipow_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipow"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

// trainedModel builds a reputation model from the synthetic feed and a
// store mapping one benign and one malicious IP.
func trainedModel(t *testing.T) (*aipow.ReputationModel, *aipow.MapStore, string, string) {
	t.Helper()
	cfg := aipow.DefaultDatasetConfig()
	cfg.N = 2000
	data, err := aipow.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data), aipow.WithTrainSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var benIP, malIP string
	var fallback map[string]float64
	store := (*aipow.MapStore)(nil)
	for _, s := range data {
		if fallback == nil && !s.Malicious {
			fallback = s.Attrs
			st, err := aipow.NewMapStore(fallback)
			if err != nil {
				t.Fatal(err)
			}
			store = st
		}
		if store == nil {
			continue
		}
		if s.Malicious && malIP == "" {
			malIP = s.IP
			store.Put(s.IP, s.Attrs)
		}
		if !s.Malicious && benIP == "" {
			benIP = s.IP
			store.Put(s.IP, s.Attrs)
		}
		if benIP != "" && malIP != "" {
			break
		}
	}
	if benIP == "" || malIP == "" {
		t.Fatal("dataset lacked both classes")
	}
	return model, store, benIP, malIP
}

// TestPublicAPIEndToEnd exercises the whole pipeline through the facade:
// dataset → trained model → framework → challenge → solve → verify.
func TestPublicAPIEndToEnd(t *testing.T) {
	model, store, benIP, malIP := trainedModel(t)
	fw, err := aipow.New(
		aipow.WithKey(testKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy2()),
		aipow.WithSource(store),
	)
	if err != nil {
		t.Fatal(err)
	}

	ben, err := fw.Decide(aipow.RequestContext{IP: benIP})
	if err != nil {
		t.Fatal(err)
	}
	mal, err := fw.Decide(aipow.RequestContext{IP: malIP})
	if err != nil {
		t.Fatal(err)
	}
	if ben.Difficulty >= mal.Difficulty {
		t.Fatalf("benign difficulty %d not below malicious %d (scores %.1f vs %.1f)",
			ben.Difficulty, mal.Difficulty, ben.Score, mal.Score)
	}

	sol, stats, err := aipow.NewSolver().Solve(context.Background(), ben.Challenge)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts == 0 {
		t.Fatal("no solve work recorded")
	}
	if err := fw.Verify(sol, benIP); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := fw.Verify(sol, benIP); !errors.Is(err, aipow.ErrReplayed) {
		t.Fatalf("replay err = %v, want ErrReplayed", err)
	}
}

func TestPublicPolicyHelpers(t *testing.T) {
	if d := aipow.Policy1().Difficulty(10); d != 11 {
		t.Errorf("Policy1(10) = %d, want 11", d)
	}
	if d := aipow.Policy2().Difficulty(0); d != 5 {
		t.Errorf("Policy2(0) = %d, want 5", d)
	}
	p3, err := aipow.Policy3(aipow.WithEpsilon(1), aipow.WithPolicySeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if d := p3.Difficulty(5); d < 5 || d > 7 {
		t.Errorf("Policy3(5) = %d, want within [5, 7]", d)
	}
	rules, err := aipow.ParsePolicyRules("when score >= 5 use 9\ndefault 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if d := rules.Difficulty(7); d != 9 {
		t.Errorf("rules(7) = %d, want 9", d)
	}
	reg := aipow.NewPolicyRegistry()
	p, err := reg.New("linear(base=3,slope=0.5)")
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Difficulty(10); d != 8 {
		t.Errorf("linear spec difficulty = %d, want 8", d)
	}
}

func TestPublicHTTPIntegration(t *testing.T) {
	model, store, _, _ := trainedModel(t)
	fw, err := aipow.New(
		aipow.WithKey(testKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy1()),
		aipow.WithSource(store),
	)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := aipow.NewHTTPMiddleware(fw, http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			_, _ = io.WriteString(w, "ok")
		}))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(protected)
	defer srv.Close()

	// Plain client gets challenged.
	plain, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, plain.Body)
	plain.Body.Close()
	if plain.StatusCode != aipow.StatusChallenge {
		t.Fatalf("plain status = %d, want %d", plain.StatusCode, aipow.StatusChallenge)
	}

	// Solving client passes.
	var solved int
	client := &http.Client{Transport: aipow.NewHTTPTransport(
		aipow.WithSolveObserver(func(aipow.SolveStats) { solved++ }),
	)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "ok" || solved != 1 {
		t.Fatalf("body=%q solved=%d", body, solved)
	}
}

func TestPublicModelPersistence(t *testing.T) {
	model, _, _, _ := trainedModel(t)
	var b strings.Builder
	if err := model.Save(&b); err != nil {
		t.Fatal(err)
	}
	loaded, err := aipow.LoadReputationModel(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	probe := map[string]float64{}
	for _, name := range model.AttributeNames() {
		probe[name] = 1
	}
	a, err := model.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	c, err := loaded.Score(probe)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatalf("score changed across save/load: %v vs %v", a, c)
	}
}

func TestPublicEvaluate(t *testing.T) {
	cfg := aipow.DefaultDatasetConfig()
	cfg.N = 1500
	data, err := aipow.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := aipow.DatasetToSamples(data)
	model, err := aipow.TrainReputationModel(samples[:1200])
	if err != nil {
		t.Fatal(err)
	}
	ev, err := aipow.EvaluateScorer(model, samples[1200:], aipow.MaxScore/2)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() < 0.6 {
		t.Fatalf("accuracy = %v, implausibly low", ev.Accuracy())
	}
	knn, err := aipow.NewKNNScorer(samples[:1200], 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aipow.EvaluateScorer(knn, samples[1200:], 5); err != nil {
		t.Fatal(err)
	}
}
