package aipow

import (
	"time"

	"aipow/internal/core"
	"aipow/internal/features"
	"aipow/internal/policy"
	"aipow/internal/sim"
)

// Framework is the assembled scoring → policy → puzzle pipeline.
// See core.Framework for method documentation: Decide issues challenges,
// Verify checks solutions, Observe feeds behavioral tracking.
type Framework = core.Framework

// RequestContext identifies one incoming request for Decide.
type RequestContext = core.RequestContext

// Decision reports what the pipeline decided for a request: the score the
// AI model produced, the difficulty the policy assigned, and the issued
// challenge.
type Decision = core.Decision

// Scorer is the AI-model seam: map per-client attributes to a reputation
// score in [0, 10], where higher means less trustworthy.
type Scorer = core.Scorer

// Hook observes decisions for logging and experiment accounting.
type Hook = core.Hook

// Option configures New.
type Option = core.Option

// New assembles a Framework from its components. WithKey, WithScorer,
// WithPolicy and WithSource are required.
func New(opts ...Option) (*Framework, error) { return core.New(opts...) }

// WithKey sets the HMAC key (≥ 16 bytes) shared by issuer and verifier.
func WithKey(key []byte) Option { return core.WithKey(key) }

// WithScorer sets the AI model.
func WithScorer(s Scorer) Option { return core.WithScorer(s) }

// WithPolicy sets the score→difficulty policy.
func WithPolicy(p Policy) Option { return core.WithPolicy(p) }

// WithSource sets the per-IP attribute source.
func WithSource(s AttributeSource) Option { return core.WithSource(s) }

// WithTracker attaches a live behavior tracker (see NewTracker).
func WithTracker(t *Tracker) Option { return core.WithTracker(t) }

// WithClock injects a time source; defaults to time.Now.
func WithClock(now func() time.Time) Option { return core.WithClock(now) }

// SimulatedClock is a manually-advanced time source for driving a
// Framework in simulated time: wire it with WithClock(clock.Now) and every
// time-dependent component — challenge TTLs, tracker windows, replay
// sweeps — follows Advance/Set instead of the wall clock. Reads are a
// single atomic load, so the clock can sit on a concurrently-driven
// serving path. The adversarial scenario engine (internal/sim, surfaced by
// cmd/attacksim) runs entire attack campaigns on one.
type SimulatedClock = sim.Clock

// NewSimulatedClock returns a simulated clock reading start.
func NewSimulatedClock(start time.Time) *SimulatedClock { return sim.NewClock(start) }

// WithTTL sets how long issued challenges stay redeemable.
func WithTTL(ttl time.Duration) Option { return core.WithTTL(ttl) }

// WithMaxDifficulty caps the difficulty the issuer will sign.
func WithMaxDifficulty(d int) Option { return core.WithMaxDifficulty(d) }

// WithPuzzleBackend selects the framework's puzzle backend — see
// Hashcash, NewHashcash, NewBalloon, ParseBackendSpec. The default is
// hashcash with the classic Version1 wire format; the balloon backend
// issues memory-hard Version2 challenges. The issuer and verifier are
// pinned to the same backend, so solutions never verify across backends.
func WithPuzzleBackend(b Backend) Option { return core.WithPuzzleBackend(b) }

// WithReplayCacheSize bounds the single-use challenge cache.
func WithReplayCacheSize(n int) Option { return core.WithReplayCacheSize(n) }

// WithHook registers a synchronous decision observer.
func WithHook(h Hook) Option { return core.WithHook(h) }

// WithFailClosedScore sets the score assumed when the scorer errors
// (default 10 — maximally suspicious).
func WithFailClosedScore(s float64) Option { return core.WithFailClosedScore(s) }

// WithBypassBelow lets requests scoring under the threshold skip the
// puzzle entirely (disabled by default; the paper always issues one).
func WithBypassBelow(threshold float64) Option { return core.WithBypassBelow(threshold) }

// WithEvidenceBuffer routes the framework's tracker writes (Observe,
// Verify's evidence, RecordVerifyEvidence) through buffered per-shard
// write-back: the hot path appends a timestamped event and a background
// loop folds the buffers into the tracker every interval, with a full
// buffer flushing itself inline at size events. Requires WithTracker;
// callers must Close the framework to stop the flush loop. Pair with
// WithSummaryStaleness for the full low-latency serving configuration.
func WithEvidenceBuffer(size int, interval time.Duration) Option {
	return core.WithEvidenceBuffer(size, interval)
}

// AttributeSource yields the attribute map used to score an IP.
type AttributeSource = features.Source

// AttributeSchema is an immutable, interned attribute layout: attribute
// names pinned to vector slots. Scorers publish one; sources fill flat
// []float64 vectors laid out by it, which is what lets the Decide hot
// path run without allocating per request.
type AttributeSchema = features.Schema

// NewAttributeSchema interns the given attribute names, in order.
func NewAttributeSchema(names ...string) (*AttributeSchema, error) {
	return features.NewSchema(names...)
}

// VectorSource is the allocation-free fast path of AttributeSource.
// Sources that implement it (MapStore, Tracker, combined sources) are
// consulted through interned vectors on the hot path.
type VectorSource = features.VectorSource

// VectorScorer is the allocation-free fast path of Scorer. Scorers that
// implement it (the reputation model, the kNN scorer) are fed interned
// vectors instead of maps on the hot path.
type VectorScorer = features.VectorScorer

// Verdict is a calibrated scoring outcome: the reputation score plus the
// scorer's confidence in it, in [0, 1].
type Verdict = features.Verdict

// VerdictScorer is the confidence-carrying fast path of Scorer. Scorers
// that implement it (the reputation model, the kNN scorer, the redemption
// wrapper) report calibrated verdicts; the framework threads the
// confidence through to confidence-aware policies (NewConfidenceShapedPolicy).
type VerdictScorer = features.VerdictScorer

// MapStore is a static attribute source (a feed snapshot) with a fallback
// profile for unknown IPs.
type MapStore = features.MapStore

// NewMapStore builds a MapStore with the given fallback profile.
func NewMapStore(fallback map[string]float64) (*MapStore, error) {
	return features.NewMapStore(fallback)
}

// Tracker maintains bounded per-IP behavioral statistics.
type Tracker = features.Tracker

// TrackerOption configures NewTracker.
type TrackerOption = features.TrackerOption

// NewTracker builds a behavior tracker.
func NewTracker(opts ...TrackerOption) (*Tracker, error) {
	return features.NewTracker(opts...)
}

// WithTrackerShards sets the tracker's lock-stripe count (rounded up to a
// power of two, clamped so the capacity bound stays exact). Zero, the
// default, auto-sizes from GOMAXPROCS and capacity.
func WithTrackerShards(n int) TrackerOption { return features.WithShards(n) }

// WithEvidenceHalfLife sets the decay half-life of the tracker's
// verified-solve credit (default 5m) — the recency horizon of behavioral
// redemption (NewRedemptionScorer).
func WithEvidenceHalfLife(d time.Duration) TrackerOption {
	return features.WithEvidenceHalfLife(d)
}

// WithSummaryStaleness lets the tracker serve a cached behavioral summary
// for up to d per IP, as long as no new verification evidence arrived —
// scoring reads then do cache-validity arithmetic instead of re-deriving
// nine attributes under the shard lock. Zero (the default) disables the
// cache; a few milliseconds is plenty to absorb a hot client's burst while
// staying far below any half-life or window the summaries feed.
func WithSummaryStaleness(d time.Duration) TrackerOption {
	return features.WithSummaryStaleness(d)
}

// RequestInfo is one observed request for behavioral tracking.
type RequestInfo = features.RequestInfo

// NewCombinedSource merges a static source with live tracker behavior.
func NewCombinedSource(static AttributeSource, tracker *Tracker) (AttributeSource, error) {
	return features.NewCombined(static, tracker)
}

// MaxScore is the top of the reputation scale (least trustworthy).
const MaxScore = policy.MaxScore
