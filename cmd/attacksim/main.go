// Command attacksim runs configurable DDoS scenarios against the framework
// on the deterministic network simulator and prints the defense
// comparison table:
//
//	attacksim
//	attacksim -bots 2000 -duration 120s -policy 'policy3(epsilon=2.5)'
//	attacksim -bot-strategy giveup -giveup-at 10
//	attacksim -bot-strategy ignore
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"aipow/internal/attack"
	"aipow/internal/experiments"
)

func main() {
	log.SetFlags(0)
	cfg := experiments.DefaultAttackConfig()

	duration := flag.Duration("duration", cfg.Scenario.Duration, "simulated time span")
	benign := flag.Int("benign", cfg.Scenario.Specs[0].Count, "benign client count")
	benignRate := flag.Float64("benign-rate", cfg.Scenario.Specs[0].RequestRate, "benign requests/s per client (open loop)")
	bots := flag.Int("bots", cfg.Scenario.Specs[1].Count, "bot count (closed loop)")
	botThink := flag.Duration("bot-think", 0, "bot pause between completed requests")
	botStrategy := flag.String("bot-strategy", "solve", "bot strategy: solve, ignore, giveup")
	giveUpAt := flag.Int("giveup-at", 10, "giveup strategy: max difficulty bots will solve")
	hashRate := flag.Float64("hashrate", experiments.CalibratedHashRate, "client hash rate (hashes/s)")
	policySpec := flag.String("policy", cfg.Policy, "adaptive policy spec")
	fixed := flag.String("fixed", "8,15", "comma-separated fixed-difficulty comparators")
	queueCap := flag.Int("queue", cfg.Scenario.QueueCap, "server queue bound (0 = unbounded)")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	flag.Parse()

	cfg.Scenario.Duration = *duration
	cfg.Scenario.QueueCap = *queueCap
	cfg.Scenario.Seed = *seed
	cfg.Seed = *seed
	cfg.Policy = *policySpec

	cfg.Scenario.Specs[0].Count = *benign
	cfg.Scenario.Specs[0].RequestRate = *benignRate
	cfg.Scenario.Specs[0].HashRate = *hashRate

	cfg.Scenario.Specs[1].Count = *bots
	cfg.Scenario.Specs[1].ThinkTime = *botThink
	cfg.Scenario.Specs[1].HashRate = *hashRate
	switch *botStrategy {
	case "solve":
		cfg.Scenario.Specs[1].Strategy = attack.StrategySolve
	case "ignore":
		cfg.Scenario.Specs[1].Strategy = attack.StrategyIgnore
		cfg.Scenario.Specs[1].HashRate = 0
	case "giveup":
		cfg.Scenario.Specs[1].Strategy = attack.StrategyGiveUpAbove
		cfg.Scenario.Specs[1].GiveUpAt = *giveUpAt
	default:
		log.Fatalf("attacksim: unknown bot strategy %q", *botStrategy)
	}

	cfg.FixedDifficulties = nil
	for _, part := range strings.Split(*fixed, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("attacksim: -fixed %q: %v", part, err)
		}
		cfg.FixedDifficulties = append(cfg.FixedDifficulties, d)
	}

	res, err := experiments.RunAttack(cfg)
	if err != nil {
		log.Fatalf("attacksim: %v", err)
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		log.Fatalf("attacksim: render: %v", err)
	}
	fmt.Println("\n(bot metrics are request-weighted: correctly-penalized bots cycle slowly")
	fmt.Println(" and contribute few samples; the mean/p90 columns expose the throttling)")
}
