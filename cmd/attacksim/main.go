// Command attacksim runs the deterministic adversarial scenario suite
// (internal/sim) against the real framework and reports per-population
// asymmetry outcomes scored against each scenario's declared invariants.
//
//	attacksim                      # run the default suite, human tables
//	attacksim -json                # also write SIM_scenarios.json
//	attacksim -json -quick         # CI mode: scaled-down populations
//	attacksim -scenario slow-and-low -seed 7
//	attacksim -list
//
// The exit status is the CI gate: non-zero when any scenario invariant is
// violated. Reports are deterministic — equal seeds produce byte-identical
// SIM_scenarios.json files.
//
// For queueing-collapse comparisons across defenses (adaptive vs. fixed
// vs. no-PoW on the netsim event loop), see `powexp attack`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"aipow/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		seed     = flag.Uint64("seed", 4, "scenario seed (equal seeds: byte-identical reports)")
		jsonOut  = flag.Bool("json", false, "write the machine-readable report")
		out      = flag.String("out", "SIM_scenarios.json", "report path for -json")
		quick    = flag.Bool("quick", false, "scale populations down for fast CI runs")
		scenario = flag.String("scenario", "", "run only the named scenario (see -list)")
		list     = flag.Bool("list", false, "list suite scenarios and exit")
		quiet    = flag.Bool("quiet", false, "suppress per-scenario tables")
		batch    = flag.Bool("batch", false, "drive arrivals through the batch entry points (byte-identical output)")
		delta    = flag.Int("delta", 0, "delta evidence gossip: full anti-entropy frame every K exchanges on clustered scenarios (byte-identical output)")
	)
	flag.Parse()

	scale := 1.0
	suiteName := "default"
	if *quick {
		scale = 0.25
		suiteName = "quick"
	}
	scenarios := sim.DefaultSuite(*seed, scale)
	if *batch {
		for i := range scenarios {
			scenarios[i].Batch = true
		}
	}
	if *delta > 0 {
		for i := range scenarios {
			if scenarios[i].Cluster != nil {
				scenarios[i].Cluster.DeltaEvery = *delta
			}
		}
	}

	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}
	if *scenario != "" {
		var filtered []sim.Scenario
		for _, sc := range scenarios {
			if sc.Name == *scenario {
				filtered = append(filtered, sc)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("attacksim: unknown scenario %q (known: %s)",
				*scenario, strings.Join(sim.SuiteNames(), ", "))
		}
		scenarios = filtered
	}

	rep, err := sim.RunSuite(suiteName, *seed, scenarios)
	if err != nil {
		log.Fatalf("attacksim: %v", err)
	}

	if !*quiet {
		for _, sr := range rep.Scenarios {
			if err := sr.RenderTable(os.Stdout); err != nil {
				log.Fatalf("attacksim: render: %v", err)
			}
		}
	}
	if *jsonOut {
		buf, err := rep.Marshal()
		if err != nil {
			log.Fatalf("attacksim: marshal report: %v", err)
		}
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("attacksim: write report: %v", err)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
	}
	if !rep.Pass {
		var failed []string
		for _, sr := range rep.Scenarios {
			if !sr.Pass {
				failed = append(failed, sr.Name)
			}
		}
		log.Fatalf("attacksim: invariant violations in: %s", strings.Join(failed, ", "))
	}
	fmt.Println("all scenario invariants passed")
}
