// Command promcheck validates Prometheus text-format (version 0.0.4)
// exposition read from a file or stdin: family structure (HELP/TYPE
// before samples), metric and label name syntax, histogram bucket
// monotonicity, and +Inf/_count agreement. It exits non-zero on the
// first violation — the CI obs job pipes live /metrics scrapes through
// it.
//
// Usage:
//
//	curl -s http://host:port/metrics | promcheck
//	promcheck scrape.prom
package main

import (
	"fmt"
	"io"
	"os"

	"aipow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var (
		data []byte
		err  error
	)
	switch len(args) {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("usage: promcheck [file]")
	}
	if err != nil {
		return err
	}
	if err := aipow.ValidateExposition(data); err != nil {
		return err
	}
	fmt.Printf("ok: %d bytes of valid exposition\n", len(data))
	return nil
}
