// Command dabr manages the DAbR-style reputation model: synthesize a
// Talos-like IP attribute feed, train the model, and evaluate scoring
// quality.
//
//	dabr generate -n 5000 -overlap 0.55 -out feed.csv
//	dabr train    -data feed.csv -out model.json
//	dabr eval     -data feed.csv -model model.json
//	dabr score    -model model.json -data feed.csv -ip 203.0.113.9
//
// Running without a subcommand performs generate→train→eval in memory on
// the calibrated defaults and prints the quality table (experiment E3).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"aipow/internal/dataset"
	"aipow/internal/experiments"
	"aipow/internal/reputation"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		runDefault()
		return
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = runGenerate(os.Args[2:])
	case "train":
		err = runTrain(os.Args[2:])
	case "eval":
		err = runEval(os.Args[2:])
	case "score":
		err = runScore(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (want generate, train, eval or score)", os.Args[1])
	}
	if err != nil {
		log.Fatalf("dabr: %v", err)
	}
}

// runDefault reproduces experiment E3 end to end.
func runDefault() {
	res, err := experiments.RunAccuracy(experiments.DefaultAccuracyConfig())
	if err != nil {
		log.Fatalf("dabr: %v", err)
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		log.Fatalf("dabr: render: %v", err)
	}
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	cfg := dataset.DefaultConfig()
	fs.IntVar(&cfg.N, "n", cfg.N, "number of samples")
	fs.Float64Var(&cfg.MaliciousFraction, "malicious", cfg.MaliciousFraction, "malicious fraction [0,1]")
	fs.Float64Var(&cfg.Overlap, "overlap", cfg.Overlap, "class overlap [0,1]; 0.55 reproduces ~80% accuracy")
	fs.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	out := fs.String("out", "feed.csv", "output CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, samples); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples to %s\n", len(samples), *out)
	return nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "feed.csv", "training CSV (from dabr generate)")
	out := fs.String("out", "model.json", "model output path")
	clusters := fs.Int("clusters", reputation.DefaultClusters, "malicious centroids")
	seed := fs.Uint64("seed", 1, "training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := loadSamples(*data)
	if err != nil {
		return err
	}
	model, err := reputation.Train(samples,
		reputation.WithClusters(*clusters), reputation.WithSeed(*seed))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		return err
	}
	distMal, distBen := model.Calibration()
	fmt.Printf("trained on %d samples (%d centroids, anchors %.4f/%.4f); saved to %s\n",
		len(samples), model.Clusters(), distMal, distBen, *out)
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	data := fs.String("data", "feed.csv", "evaluation CSV")
	modelPath := fs.String("model", "model.json", "trained model path")
	threshold := fs.Float64("threshold", reputation.MaxScore/2, "malicious-classification score threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := loadSamples(*data)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	ev, err := reputation.Evaluate(model, samples, *threshold)
	if err != nil {
		return err
	}
	fmt.Println(ev)
	return nil
}

func runScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	data := fs.String("data", "feed.csv", "feed CSV holding the IP's attributes")
	modelPath := fs.String("model", "model.json", "trained model path")
	ip := fs.String("ip", "", "IP address to score (must appear in the feed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ip == "" {
		return fmt.Errorf("score requires -ip")
	}
	raw, err := loadRaw(*data)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	for _, s := range raw {
		if s.IP == *ip {
			score, err := model.Score(s.Attrs)
			if err != nil {
				return err
			}
			fmt.Printf("%s -> reputation %.2f (0 trustworthy … 10 untrustworthy)\n", *ip, score)
			return nil
		}
	}
	return fmt.Errorf("ip %s not found in %s", *ip, *data)
}

func loadRaw(path string) ([]dataset.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

func loadSamples(path string) ([]reputation.Sample, error) {
	raw, err := loadRaw(path)
	if err != nil {
		return nil, err
	}
	out := make([]reputation.Sample, len(raw))
	for i, s := range raw {
		out[i] = reputation.Sample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	return out, nil
}

func loadModel(path string) (*reputation.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return reputation.Load(f)
}
