// Command powclient issues requests against a PoW-protected server,
// solving challenges transparently and reporting latency and solve cost:
//
//	powclient -url http://localhost:8080/api -n 10
//	powclient -url http://localhost:8080/api -n 100 -concurrency 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"aipow"
	"aipow/internal/metrics"
)

func main() {
	log.SetFlags(0)
	url := flag.String("url", "http://localhost:8080/", "target URL")
	n := flag.Int("n", 10, "number of requests")
	concurrency := flag.Int("concurrency", 1, "parallel workers")
	flag.Parse()
	if *n < 1 || *concurrency < 1 {
		log.Fatal("powclient: -n and -concurrency must be positive")
	}

	var mu sync.Mutex
	latency := metrics.NewSummary(*n)
	solveMS := metrics.NewSummary(*n)
	var attempts, solves, failures uint64

	transport := aipow.NewHTTPTransport(
		aipow.WithSolveObserver(func(s aipow.SolveStats) {
			mu.Lock()
			defer mu.Unlock()
			solves++
			attempts += s.Attempts
			solveMS.ObserveDuration(s.Elapsed)
		}),
	)
	client := &http.Client{Transport: transport, Timeout: 2 * time.Minute}

	jobs := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				start := time.Now()
				resp, err := client.Get(*url)
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					log.Printf("powclient: request: %v", err)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				if resp.StatusCode == http.StatusOK {
					latency.ObserveDuration(time.Since(start))
				} else {
					failures++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()

	fmt.Printf("requests: %d ok, %d failed\n", latency.Count(), failures)
	if latency.Count() > 0 {
		fmt.Printf("latency : median %.2f ms  p90 %.2f ms  mean %.2f ms\n",
			latency.Median(), latency.Percentile(90), latency.Mean())
	}
	if solves > 0 {
		fmt.Printf("solving : %d puzzles, %d total hashes, median solve %.3f ms\n",
			solves, attempts, solveMS.Median())
	}
}
