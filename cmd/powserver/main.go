// Command powserver runs an HTTP server protected by the AI-assisted PoW
// framework, driven by the runtime control plane. With no flags it
// synthesizes an intelligence feed, trains the reputation model, wires a
// single-pipeline deployment from the -policy flag, and serves a demo
// endpoint on :8080:
//
//	powserver
//	powserver -addr :9000 -policy 'policy3(epsilon=2.5)'
//	powserver -feed feed.csv -model model.json -key $(openssl rand -hex 32)
//	powserver -spec deploy.spec -admin 127.0.0.1:8081
//
// With -spec the whole deployment — per-route pipelines, policies,
// scorers, limits — comes from a declarative spec file (see SPEC.md for
// the grammar). The deployment reconfigures live, without dropping a
// request, through either channel:
//
//   - SIGHUP re-reads the -spec file and applies it;
//   - the -admin listener accepts POST /apply with a spec body, and
//     serves GET /spec (current deployment), GET /spec/history (the last
//     applied generations), POST /rollback (revert to the previous
//     generation), and GET /stats (per-pipeline counters, including
//     adapt.* controller state).
//
// The same listener is the observability plane: GET /metrics serves the
// whole deployment in Prometheus text exposition format (serving
// counters, per-stage latency histograms, adapt and cluster state, every
// series labeled with the pipeline and this node's name), GET /trace
// serves the sampled decision traces of pipelines with an `observe
// trace(...)` spec line, and GET /events serves the defense event log
// (adapt escalations with the tripping signal value, spec
// applies/rollbacks, cluster membership changes, evidence flush stalls).
// /trace and /events carry per-client and posture detail, so they demand
// the -admin-token; /metrics stays open for scrapers. -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
//
// With -adapt the server also runs the feedback controllers declared in
// the spec's `adapt` sections: live signal estimation (request rate,
// verify failures, difficulty distribution, the hard-solve FP proxy)
// driving automatic policy escalation and de-escalation through the same
// hot-swap path /apply uses. Without the flag, adapt sections are parsed
// and validated but stay dormant.
//
// -admin-token protects the mutating admin endpoints (POST /apply, POST
// /rollback) with a constant-time bearer check; read endpoints stay open
// for scrapers. Without a token the admin listener is fully open — bind
// it privately. POST /batch alternatively accepts per-request signed
// proxy headers (X-AIPoW-Client-IP + timestamp + signature under a key
// derived from -key), so the proxy tier never holds the admin token.
//
// Fleet deployments add two flags: -node-id names this node's gossip
// origin (default: the hostname), and -cluster-listen serves GET
// /cluster/<pipeline> state frames for peers whose specs name this node
// in a `cluster peers(...)` statement. Single-node deployments without
// cluster sections are byte-for-byte unaffected.
//
// Spec-named components: scorers "dabr" (the trained reputation model)
// and "rate(saturation=N)" (kaPoW-style request-rate scorer); sources
// "feed" (static store), "tracker" (live behavior), "combined" (both).
//
// Endpoints: every path is protected; GET /healthz is exempt.
package main

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"aipow"
	"aipow/internal/baseline"
	"aipow/internal/dataset"
	"aipow/internal/policy"
	"aipow/internal/reputation"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	adminAddr := flag.String("admin", "", "control-plane listen address (empty disables; bind privately)")
	adminToken := flag.String("admin-token", "", "bearer token required on mutating admin endpoints (empty leaves them open)")
	adapt := flag.Bool("adapt", false, "run the feedback controllers declared in the spec's adapt sections")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the admin listener")
	specPath := flag.String("spec", "", "deployment spec file (text DSL or JSON; overrides -policy/-bypass)")
	policySpec := flag.String("policy", "policy2", "policy spec for the default single-pipeline deployment")
	keyHex := flag.String("key", "", "hex HMAC key (≥32 hex chars); random demo key when empty")
	feedPath := flag.String("feed", "", "IP attribute feed CSV (dabr generate); synthetic demo feed when empty")
	modelPath := flag.String("model", "", "trained model JSON (dabr train); trains on the feed when empty")
	bypass := flag.Float64("bypass", -1, "bypass puzzles for scores below this (negative disables)")
	trustHeader := flag.String("trust-ip-header", "", "trust this header for client IPs (behind a proxy only)")
	tenantHeader := flag.String("tenant-header", "", "trust this header as the tenant routing key (behind a proxy only)")
	nodeID := flag.String("node-id", "", "this node's cluster origin name (default: the hostname)")
	clusterListen := flag.String("cluster-listen", "", "peer-exchange listen address serving GET /cluster/<pipeline> frames (empty disables; bind privately)")
	flag.Parse()

	origin := *nodeID
	if origin == "" {
		if host, err := os.Hostname(); err == nil {
			origin = host
		}
	}

	key, err := resolveKey(*keyHex)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	feed, err := resolveFeed(*feedPath)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	model, err := resolveModel(*modelPath, feed)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	store, err := buildStore(feed)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	// The defense event log backs GET /events: every adapt transition,
	// spec apply/rollback, cluster membership change, and evidence stall
	// lands here regardless of whether an admin listener is serving it.
	events := aipow.NewEventLog(0)
	registry, err := buildRegistry(key, model, store, origin, events)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}

	dep, err := resolveDeployment(*specPath, *policySpec, *bypass)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	gk, err := aipow.NewGatekeeper(registry, dep)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}

	app := http.NewServeMux()
	app.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "protected resource %q served at %s\n", r.URL.Path, time.Now().Format(time.RFC3339))
	})
	var mwOpts []aipow.HTTPMiddlewareOption
	if *trustHeader != "" {
		mwOpts = append(mwOpts, aipow.WithTrustedIPHeader(*trustHeader))
	}
	if *tenantHeader != "" {
		mwOpts = append(mwOpts, aipow.WithTenantHeader(*tenantHeader))
	}
	protected, err := aipow.NewRoutedHTTPMiddleware(gk, app, mwOpts...)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}

	root := http.NewServeMux()
	root.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	root.Handle("/", protected)

	if *specPath != "" {
		reloadOnSIGHUP(gk, *specPath)
	}
	if *adminAddr != "" {
		proxyAuth, err := aipow.NewProxyAuth(aipow.DeriveProxyAuthKey(key))
		if err != nil {
			log.Fatalf("powserver: %v", err)
		}
		admin, err := newAdminMux(*adminToken, proxyAuth, gk, origin, events, *pprofFlag)
		if err != nil {
			log.Fatalf("powserver: %v", err)
		}
		go serveAdmin(*adminAddr, admin)
	}
	if *clusterListen != "" {
		go serveCluster(*clusterListen, gk)
	}
	if *adapt {
		go runAdaptLoop(gk)
	}

	// On SIGINT/SIGTERM, stop the pipelines' evidence flush loops and
	// drain their buffers before exiting; serving state needs no other
	// teardown.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-stop
		_ = gk.Close()
		os.Exit(0)
	}()

	log.Printf("powserver: pipelines %v, %d feed IPs, listening on %s", gk.Names(), store.Len(), *addr)
	server := &http.Server{Addr: *addr, Handler: root, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(server.ListenAndServe())
}

// buildRegistry assembles the component registry the spec's names resolve
// against: the trained model and the feed store become spec-addressable
// components sharing one tracker and key across all pipelines.
func buildRegistry(key []byte, model *reputation.Model, store *aipow.MapStore, nodeID string, events *aipow.EventLog) (*aipow.ComponentRegistry, error) {
	tracker, err := aipow.NewTracker()
	if err != nil {
		return nil, err
	}
	opts := []aipow.ComponentRegistryOption{aipow.WithSharedTracker(tracker)}
	if nodeID != "" {
		opts = append(opts, aipow.WithRegistryNodeID(nodeID))
	}
	if events != nil {
		opts = append(opts, aipow.WithRegistryEvents(events.Append))
	}
	registry, err := aipow.NewComponentRegistry(key, opts...)
	if err != nil {
		return nil, err
	}
	if err := registry.RegisterScorer("dabr", func(params map[string]float64) (aipow.Scorer, error) {
		if err := policy.RejectUnknownParams(params); err != nil {
			return nil, err
		}
		return model, nil
	}); err != nil {
		return nil, err
	}
	if err := registry.RegisterScorer("rate", func(params map[string]float64) (aipow.Scorer, error) {
		if err := policy.RejectUnknownParams(params, "saturation"); err != nil {
			return nil, err
		}
		saturation, ok := params["saturation"]
		if !ok {
			return nil, fmt.Errorf("rate requires saturation=<req/s>")
		}
		rs, err := baseline.NewRateScorer(saturation)
		if err != nil {
			return nil, err
		}
		return rs, nil
	}); err != nil {
		return nil, err
	}
	if err := registry.RegisterSource("feed", func(params map[string]float64, _ *aipow.Tracker) (aipow.AttributeSource, error) {
		if err := policy.RejectUnknownParams(params); err != nil {
			return nil, err
		}
		return store, nil
	}); err != nil {
		return nil, err
	}
	if err := registry.RegisterSource("combined", func(params map[string]float64, tracker *aipow.Tracker) (aipow.AttributeSource, error) {
		if err := policy.RejectUnknownParams(params); err != nil {
			return nil, err
		}
		return aipow.NewCombinedSource(store, tracker)
	}); err != nil {
		return nil, err
	}
	return registry, nil
}

// resolveDeployment loads the spec file, or synthesizes the classic
// single-pipeline deployment from the -policy/-bypass flags.
func resolveDeployment(specPath, policySpec string, bypass float64) (*aipow.DeploymentSpec, error) {
	if specPath != "" {
		return loadDeployment(specPath)
	}
	ps := aipow.PipelineSpec{Name: "default", Scorer: "dabr", Policy: policySpec, Source: "combined"}
	if bypass >= 0 {
		ps.BypassBelow = &bypass
	}
	return &aipow.DeploymentSpec{Pipelines: []aipow.PipelineSpec{ps}}, nil
}

// loadDeployment reads and parses a spec file.
func loadDeployment(path string) (*aipow.DeploymentSpec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read spec: %w", err)
	}
	dep, err := aipow.ParseDeployment(string(buf))
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return dep, nil
}

// reloadOnSIGHUP re-reads the spec file and applies it on every SIGHUP —
// the restart-free operator workflow: edit the file, kill -HUP.
func reloadOnSIGHUP(gk *aipow.Gatekeeper, specPath string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		for range ch {
			dep, err := loadDeployment(specPath)
			if err != nil {
				log.Printf("powserver: SIGHUP reload rejected: %v", err)
				continue
			}
			if err := gk.Apply(dep); err != nil {
				log.Printf("powserver: SIGHUP apply rejected: %v", err)
				continue
			}
			log.Printf("powserver: SIGHUP applied %s (pipelines %v)", specPath, gk.Names())
		}
	}()
}

// runAdaptLoop drives the feedback controllers of every pipeline whose
// spec declares an adapt section: a coarse ticker calls the gatekeeper's
// StepControllers, and each controller internally skips until its own
// interval has elapsed. The closed loop uses the exact policy hot-swap
// path /apply does, so everything an escalation installs is visible on
// GET /stats (the adapt.* keys) and revertible via POST /rollback.
func runAdaptLoop(gk *aipow.Gatekeeper) {
	log.Print("powserver: adaptive feedback loop running")
	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	var lastErr string
	for now := range ticker.C {
		if err := gk.StepControllers(now); err != nil {
			// Log state changes, not every tick, so a persistent swap
			// failure cannot flood the log.
			if msg := err.Error(); msg != lastErr {
				log.Printf("powserver: adapt: %v", err)
				lastErr = msg
			}
			continue
		}
		lastErr = ""
	}
}

// requireBearer wraps a mutating admin handler with a constant-time
// bearer-token check. An empty configured token leaves the handler open
// (the pre-hardening behavior — bind the listener privately).
func requireBearer(token string, next http.HandlerFunc) http.HandlerFunc {
	if token == "" {
		return next
	}
	// Compare digests, not raw strings: ConstantTimeCompare leaks length
	// mismatches, a hash makes both sides fixed-width.
	want := sha256.Sum256([]byte(token))
	return func(w http.ResponseWriter, r *http.Request) {
		auth := r.Header.Get("Authorization")
		const prefix = "Bearer "
		if !strings.HasPrefix(auth, prefix) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="powserver-admin"`)
			http.Error(w, "missing bearer token", http.StatusUnauthorized)
			return
		}
		got := sha256.Sum256([]byte(strings.TrimPrefix(auth, prefix)))
		if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="powserver-admin"`)
			http.Error(w, "invalid bearer token", http.StatusUnauthorized)
			return
		}
		next(w, r)
	}
}

// requireBearerOrProxy admits a request through either credential: the
// admin bearer token, or the signed proxy headers proving the caller
// holds the key derived from the deployment's root key — so the proxy
// tier can drive POST /batch without ever seeing the admin token, and a
// leaked admin token no longer implies a leaked serving path. A request
// that presents a proxy signature is judged on it alone (a bad
// signature never falls back to the bearer check).
func requireBearerOrProxy(token string, auth *aipow.ProxyAuth, next http.HandlerFunc) http.HandlerFunc {
	bearer := requireBearer(token, next)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(aipow.HeaderProxySignature) == "" {
			bearer(w, r)
			return
		}
		if _, err := auth.Authenticate(r); err != nil {
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		next(w, r)
	}
}

// serveCluster runs the peer-exchange listener: GET /cluster/<pipeline>
// serves the named pipeline's current state frame (Bloom filter over
// redeemed tags, reputation digest, serving counters) for fleet peers
// to absorb. Frames are HMAC-signed with the pipeline's key, so the
// listener leaks nothing actionable to an unkeyed reader — but bind it
// privately anyway. Pipelines are resolved per request, so hot-swapped
// deployments serve their current generation's node.
func serveCluster(addr string, gk *aipow.Gatekeeper) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/{pipeline}", func(w http.ResponseWriter, r *http.Request) {
		p, ok := gk.Pipeline(r.PathValue("pipeline"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		node := p.ClusterNode()
		if node == nil {
			http.Error(w, "pipeline is not clustered", http.StatusNotFound)
			return
		}
		node.Handler().ServeHTTP(w, r)
	})
	log.Printf("powserver: cluster exchange on %s (GET /cluster/<pipeline>)", addr)
	server := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(server.ListenAndServe())
}

// newAdminMux assembles the control-plane handler: POST /apply (spec
// body), POST /rollback, POST /batch, GET /spec, GET /spec/history, GET
// /stats, GET /metrics (Prometheus text exposition), and the token-authed
// observability reads GET /trace (sampled decision traces) and GET
// /events (the defense event log). Mutating endpoints and the
// trace/events reads honor the bearer token (the batch front door also
// accepts signed proxy headers); plain scrape endpoints stay open — bind
// the listener to a private interface regardless. node labels every
// exposition series; withPprof mounts net/http/pprof under /debug/pprof/.
func newAdminMux(token string, proxyAuth *aipow.ProxyAuth, gk *aipow.Gatekeeper, node string, events *aipow.EventLog, withPprof bool) (*http.ServeMux, error) {
	// One stats map reused across polls (StatsInto): the scrape path does
	// not allocate a map per request.
	var statsMu sync.Mutex
	stats := make(map[string]float64, 16)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /apply", requireBearer(token, func(w http.ResponseWriter, r *http.Request) {
		// MaxBytesReader (not LimitReader) so an oversized spec is
		// rejected loudly instead of silently truncated — a cut-off
		// deployment could still validate and route tenants wrongly.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		dep, err := aipow.ParseDeployment(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := gk.Apply(dep); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		log.Printf("powserver: admin applied new deployment (pipelines %v)", gk.Names())
		fmt.Fprintf(w, "applied; pipelines %v\n", gk.Names())
	}))
	mux.HandleFunc("POST /rollback", requireBearer(token, func(w http.ResponseWriter, r *http.Request) {
		if _, err := gk.Rollback(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		log.Printf("powserver: admin rolled back deployment (pipelines %v)", gk.Names())
		fmt.Fprintf(w, "rolled back; pipelines %v\n", gk.Names())
	}))
	// The batch front door trusts caller-supplied client IPs, so it lives
	// on the (privately bound) admin listener behind a credential: the
	// bearer token, or per-request signed proxy headers — only a trusted
	// proxy tier may decide on behalf of clients.
	batch, err := aipow.NewRoutedHTTPBatchHandler(gk)
	if err != nil {
		return nil, fmt.Errorf("batch handler: %w", err)
	}
	mux.HandleFunc("POST /batch", requireBearerOrProxy(token, proxyAuth, batch.ServeHTTP))
	mux.HandleFunc("GET /spec/history", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(gk.History())
	})
	mux.HandleFunc("GET /spec", func(w http.ResponseWriter, r *http.Request) {
		buf, err := gk.Spec().Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		statsMu.Lock()
		defer statsMu.Unlock()
		clear(stats)
		gk.StatsInto(stats)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(stats)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		e := aipow.NewExposition()
		gk.ExpositionInto(e, node)
		w.Header().Set("Content-Type", metricsContentType)
		_, _ = e.WriteTo(w)
	})
	// Trace and event reads expose per-client scores and defense posture,
	// so unlike the aggregate scrape endpoints they sit behind the token.
	mux.HandleFunc("GET /trace", requireBearer(token, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(gk.TraceSnapshots())
	}))
	mux.HandleFunc("GET /events", requireBearer(token, func(w http.ResponseWriter, r *http.Request) {
		snap := []aipow.DefenseEvent{}
		if events != nil {
			snap = events.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	}))
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux, nil
}

// metricsContentType is the Prometheus text exposition format version the
// /metrics endpoint emits.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// serveAdmin runs the control-plane listener built by newAdminMux.
func serveAdmin(addr string, mux http.Handler) {
	log.Printf("powserver: control plane on %s (POST /apply, POST /rollback, POST /batch, GET /spec, GET /spec/history, GET /stats, GET /metrics, GET /trace, GET /events)", addr)
	server := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(server.ListenAndServe())
}

// resolveKey decodes the hex key or generates a demo key.
func resolveKey(keyHex string) ([]byte, error) {
	if keyHex == "" {
		log.Print("powserver: no -key given; using an ephemeral demo key")
		return []byte("ephemeral-demo-key-do-not-deploy"), nil
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil {
		return nil, fmt.Errorf("decode -key: %w", err)
	}
	return key, nil
}

// resolveFeed loads the CSV feed or synthesizes the calibrated demo feed.
func resolveFeed(path string) ([]dataset.Sample, error) {
	if path == "" {
		log.Print("powserver: no -feed given; synthesizing the calibrated demo feed")
		return dataset.Generate(dataset.DefaultConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

// resolveModel loads a trained model or trains one on the feed.
func resolveModel(path string, feed []dataset.Sample) (*reputation.Model, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return reputation.Load(f)
	}
	log.Print("powserver: no -model given; training on the feed")
	samples := make([]reputation.Sample, len(feed))
	for i, s := range feed {
		samples[i] = reputation.Sample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	return reputation.Train(samples)
}

// buildStore indexes the feed by IP with a benign fallback profile.
func buildStore(feed []dataset.Sample) (*aipow.MapStore, error) {
	var fallback map[string]float64
	for _, s := range feed {
		if !s.Malicious {
			fallback = s.Attrs
			break
		}
	}
	if fallback == nil {
		return nil, fmt.Errorf("feed has no benign samples for the fallback profile")
	}
	store, err := aipow.NewMapStore(fallback)
	if err != nil {
		return nil, err
	}
	for _, s := range feed {
		store.Put(s.IP, s.Attrs)
	}
	return store, nil
}
