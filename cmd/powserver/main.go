// Command powserver runs an HTTP server protected by the AI-assisted PoW
// framework. With no flags it synthesizes an intelligence feed, trains the
// reputation model, and serves a demo endpoint on :8080:
//
//	powserver
//	powserver -addr :9000 -policy 'policy3(epsilon=2.5)'
//	powserver -feed feed.csv -model model.json -key $(openssl rand -hex 32)
//
// Endpoints: every path is protected; GET /healthz is exempt.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"aipow"
	"aipow/internal/dataset"
	"aipow/internal/reputation"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	policySpec := flag.String("policy", "policy2", "policy spec (policy1, policy2, policy3(epsilon=2.5), fixed(difficulty=8), …)")
	keyHex := flag.String("key", "", "hex HMAC key (≥32 hex chars); random demo key when empty")
	feedPath := flag.String("feed", "", "IP attribute feed CSV (dabr generate); synthetic demo feed when empty")
	modelPath := flag.String("model", "", "trained model JSON (dabr train); trains on the feed when empty")
	bypass := flag.Float64("bypass", -1, "bypass puzzles for scores below this (negative disables)")
	trustHeader := flag.String("trust-ip-header", "", "trust this header for client IPs (behind a proxy only)")
	flag.Parse()

	key, err := resolveKey(*keyHex)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	feed, err := resolveFeed(*feedPath)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	model, err := resolveModel(*modelPath, feed)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	store, err := buildStore(feed)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	tracker, err := aipow.NewTracker()
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	source, err := aipow.NewCombinedSource(store, tracker)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}
	pol, err := aipow.NewPolicyRegistry().New(*policySpec)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}

	opts := []aipow.Option{
		aipow.WithKey(key),
		aipow.WithScorer(model),
		aipow.WithPolicy(pol),
		aipow.WithSource(source),
		aipow.WithTracker(tracker),
	}
	if *bypass >= 0 {
		opts = append(opts, aipow.WithBypassBelow(*bypass))
	}
	fw, err := aipow.New(opts...)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}

	app := http.NewServeMux()
	app.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "protected resource %q served at %s\n", r.URL.Path, time.Now().Format(time.RFC3339))
	})
	var mwOpts []aipow.HTTPMiddlewareOption
	if *trustHeader != "" {
		mwOpts = append(mwOpts, aipow.WithTrustedIPHeader(*trustHeader))
	}
	protected, err := aipow.NewHTTPMiddleware(fw, app, mwOpts...)
	if err != nil {
		log.Fatalf("powserver: %v", err)
	}

	root := http.NewServeMux()
	root.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	root.Handle("/", protected)

	log.Printf("powserver: policy %s, %d feed IPs, listening on %s", pol.Name(), store.Len(), *addr)
	server := &http.Server{Addr: *addr, Handler: root, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(server.ListenAndServe())
}

// resolveKey decodes the hex key or generates a demo key.
func resolveKey(keyHex string) ([]byte, error) {
	if keyHex == "" {
		log.Print("powserver: no -key given; using an ephemeral demo key")
		return []byte("ephemeral-demo-key-do-not-deploy"), nil
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil {
		return nil, fmt.Errorf("decode -key: %w", err)
	}
	return key, nil
}

// resolveFeed loads the CSV feed or synthesizes the calibrated demo feed.
func resolveFeed(path string) ([]dataset.Sample, error) {
	if path == "" {
		log.Print("powserver: no -feed given; synthesizing the calibrated demo feed")
		return dataset.Generate(dataset.DefaultConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

// resolveModel loads a trained model or trains one on the feed.
func resolveModel(path string, feed []dataset.Sample) (*reputation.Model, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return reputation.Load(f)
	}
	log.Print("powserver: no -model given; training on the feed")
	samples := make([]reputation.Sample, len(feed))
	for i, s := range feed {
		samples[i] = reputation.Sample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	return reputation.Train(samples)
}

// buildStore indexes the feed by IP with a benign fallback profile.
func buildStore(feed []dataset.Sample) (*aipow.MapStore, error) {
	var fallback map[string]float64
	for _, s := range feed {
		if !s.Malicious {
			fallback = s.Attrs
			break
		}
	}
	if fallback == nil {
		return nil, fmt.Errorf("feed has no benign samples for the fallback profile")
	}
	store, err := aipow.NewMapStore(fallback)
	if err != nil {
		return nil, err
	}
	for _, s := range feed {
		store.Put(s.IP, s.Attrs)
	}
	return store, nil
}
