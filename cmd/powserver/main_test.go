package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipow"
)

// stubScorer gives every client the same mid-scale score.
type stubScorer struct{}

func (stubScorer) Score(map[string]float64) (float64, error) { return 5, nil }

const adminTestSpec = `
pipeline web
  scorer stub
  source tracker
  policy policy2
  observe trace(sample=1, ring=16)
`

// newTestAdmin builds a real gatekeeper (one traced pipeline, a few
// decisions driven through it) and the admin mux under test.
func newTestAdmin(t *testing.T, token string) (*http.ServeMux, *aipow.Gatekeeper, *aipow.EventLog) {
	t.Helper()
	key := []byte("0123456789abcdef0123456789abcdef")
	events := aipow.NewEventLog(0)
	reg, err := aipow.NewComponentRegistry(key, aipow.WithRegistryEvents(events.Append))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterScorer("stub", func(map[string]float64) (aipow.Scorer, error) {
		return stubScorer{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	dep, err := aipow.ParseDeployment(adminTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gk.Close() })
	p, ok := gk.Pipeline("web")
	if !ok {
		t.Fatal("pipeline web missing")
	}
	for range 3 {
		if _, err := p.Framework().Decide(aipow.RequestContext{IP: "10.0.0.1"}); err != nil {
			t.Fatal(err)
		}
	}
	proxyAuth, err := aipow.NewProxyAuth(aipow.DeriveProxyAuthKey(key))
	if err != nil {
		t.Fatal(err)
	}
	mux, err := newAdminMux(token, proxyAuth, gk, "node-test", events, true)
	if err != nil {
		t.Fatal(err)
	}
	return mux, gk, events
}

func get(t *testing.T, mux http.Handler, path, token string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestAdminContentTypes pins the Content-Type of every read endpoint, so
// a scraper or dashboard never has to sniff.
func TestAdminContentTypes(t *testing.T) {
	mux, _, _ := newTestAdmin(t, "")
	cases := []struct{ path, want string }{
		{"/stats", "application/json"},
		{"/spec", "application/json"},
		{"/spec/history", "application/json"},
		{"/trace", "application/json"},
		{"/events", "application/json"},
		{"/metrics", metricsContentType},
	}
	for _, tc := range cases {
		rec := get(t, mux, tc.path, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", tc.path, rec.Code)
		}
		if got := rec.Header().Get("Content-Type"); got != tc.want {
			t.Errorf("GET %s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestAdminMetricsEndpoint validates the exposition output and checks the
// deployment's series made it out with pipeline and node labels.
func TestAdminMetricsEndpoint(t *testing.T) {
	mux, _, _ := newTestAdmin(t, "")
	rec := get(t, mux, "/metrics", "")
	body := rec.Body.String()
	if err := aipow.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`aipow_issued{pipeline="web",node="node-test"} 3`,
		`aipow_serving_latency_ms_count{pipeline="web",node="node-test",stage="decide"} 3`,
		`aipow_trace_sampled{pipeline="web",node="node-test"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestAdminTraceAndEventsAuth: with a token configured, /trace and
// /events refuse unauthenticated reads and serve authenticated ones.
func TestAdminTraceAndEventsAuth(t *testing.T) {
	mux, _, events := newTestAdmin(t, "sekrit")
	for _, path := range []string{"/trace", "/events"} {
		if rec := get(t, mux, path, ""); rec.Code != http.StatusUnauthorized {
			t.Errorf("GET %s unauthenticated = %d, want 401", path, rec.Code)
		}
		if rec := get(t, mux, path, "wrong"); rec.Code != http.StatusUnauthorized {
			t.Errorf("GET %s bad token = %d, want 401", path, rec.Code)
		}
	}

	rec := get(t, mux, "/trace", "sekrit")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /trace = %d, want 200", rec.Code)
	}
	var traces map[string][]aipow.TraceSample
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces["web"]) != 3 {
		t.Fatalf("trace snapshot has %d web samples, want 3", len(traces["web"]))
	}
	for _, s := range traces["web"] {
		if s.Kind != "decide" || s.Client == "" {
			t.Fatalf("trace sample = %+v, want a decide with a client hash", s)
		}
	}

	// The gatekeeper build appended spec.apply to the shared log.
	rec = get(t, mux, "/events", "sekrit")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /events = %d, want 200", rec.Code)
	}
	var evs []aipow.DefenseEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Kind != aipow.EventSpecApply {
		t.Fatalf("events = %+v, want a leading spec.apply", evs)
	}
	if got := events.Total(); got != uint64(len(evs)) {
		t.Fatalf("event log total %d != served %d", got, len(evs))
	}
}

// TestAdminPprofMount: -pprof mounts the profile index; without the flag
// the path 404s.
func TestAdminPprofMount(t *testing.T) {
	mux, _, _ := newTestAdmin(t, "")
	if rec := get(t, mux, "/debug/pprof/", ""); rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rec.Code)
	}

	key := []byte("0123456789abcdef0123456789abcdef")
	proxyAuth, err := aipow.NewProxyAuth(aipow.DeriveProxyAuthKey(key))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := aipow.NewComponentRegistry(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterScorer("stub", func(map[string]float64) (aipow.Scorer, error) {
		return stubScorer{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	dep, err := aipow.ParseDeployment(adminTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := aipow.NewGatekeeper(reg, dep)
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()
	bare, err := newAdminMux("", proxyAuth, gk, "", nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, bare, "/debug/pprof/", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ without -pprof = %d, want 404", rec.Code)
	}
}
