// Command powexp regenerates every table and figure of the paper's
// evaluation (and the ablations):
//
//	powexp -exp fig2        # Figure 2: latency vs reputation per policy
//	powexp -exp solvetime   # §III.A: solve latency vs difficulty
//	powexp -exp solvetime -real  # …also hash for real on this host
//	powexp -exp accuracy    # §II.1: DAbR ~80% accuracy
//	powexp -exp attack      # throttling under DDoS (adaptive vs baselines)
//	powexp -exp epsilon     # Policy 3 ε sweep
//	powexp -exp all         # everything
//
// Add -csv DIR to also write each table as CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"aipow/internal/experiments"
	"aipow/internal/metrics"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment: fig2, solvetime, accuracy, attack, epsilon, hashrate, or all")
	trials := flag.Int("trials", 30, "trials per point (fig2/solvetime/epsilon)")
	real := flag.Bool("real", false, "solvetime: also measure real SHA-256 solving on this host")
	seed := flag.Uint64("seed", 1, "base random seed")
	csvDir := flag.String("csv", "", "directory to also write tables as CSV")
	flag.Parse()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig2") {
		ran = true
		cfg := experiments.DefaultFig2Config()
		cfg.Trials = *trials
		cfg.Seed = *seed
		res, err := experiments.RunFig2(cfg)
		if err != nil {
			log.Fatalf("powexp: fig2: %v", err)
		}
		emit(res.Table(), *csvDir, "fig2_median.csv")
		emit(res.MeanTable(), *csvDir, "fig2_mean.csv")
	}
	if want("solvetime") {
		ran = true
		cfg := experiments.DefaultSolveTimeConfig()
		cfg.Trials = *trials
		cfg.Real = *real
		cfg.Seed = *seed + 1
		res, err := experiments.RunSolveTime(cfg)
		if err != nil {
			log.Fatalf("powexp: solvetime: %v", err)
		}
		emit(res.Table(), *csvDir, "solvetime.csv")
	}
	if want("accuracy") {
		ran = true
		cfg := experiments.DefaultAccuracyConfig()
		cfg.Seed = *seed + 2
		res, err := experiments.RunAccuracy(cfg)
		if err != nil {
			log.Fatalf("powexp: accuracy: %v", err)
		}
		emit(res.Table(), *csvDir, "accuracy.csv")
	}
	if want("attack") {
		ran = true
		cfg := experiments.DefaultAttackConfig()
		cfg.Seed = *seed + 3
		res, err := experiments.RunAttack(cfg)
		if err != nil {
			log.Fatalf("powexp: attack: %v", err)
		}
		emit(res.Table(), *csvDir, "attack.csv")
	}
	if want("epsilon") {
		ran = true
		cfg := experiments.DefaultEpsilonConfig()
		cfg.Trials = *trials
		cfg.Seed = *seed + 4
		res, err := experiments.RunEpsilon(cfg)
		if err != nil {
			log.Fatalf("powexp: epsilon: %v", err)
		}
		emit(res.Table(), *csvDir, "epsilon.csv")
	}
	if want("hashrate") {
		ran = true
		cfg := experiments.DefaultHashrateConfig()
		cfg.Seed = *seed + 5
		res, err := experiments.RunHashrate(cfg)
		if err != nil {
			log.Fatalf("powexp: hashrate: %v", err)
		}
		emit(res.Table(), *csvDir, "hashrate.csv")
	}
	if !ran {
		log.Fatalf("powexp: unknown experiment %q", *exp)
	}
}

// emit prints the table and optionally writes it as CSV.
func emit(t *metrics.Table, dir, filename string) {
	if err := t.Render(os.Stdout); err != nil {
		log.Fatalf("powexp: render: %v", err)
	}
	fmt.Println()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("powexp: mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, filename)
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("powexp: create %s: %v", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		log.Fatalf("powexp: write %s: %v", path, err)
	}
	fmt.Printf("(csv written to %s)\n\n", strings.TrimPrefix(path, "./"))
}
