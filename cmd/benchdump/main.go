// Command benchdump measures the serving hot path — Decide, Verify, and
// Score — with testing.Benchmark and writes the results as machine-readable
// JSON (default BENCH_hotpath.json), so successive PRs can track the
// performance trajectory without parsing `go test -bench` text output.
//
// Usage:
//
//	go run ./cmd/benchdump [-out BENCH_hotpath.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"aipow"
)

var benchKey = []byte("benchmark-hmac-key-32-bytes-long")

// result is one benchmark's stable, diffable summary.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"iterations"`
}

type dump struct {
	GeneratedBy string            `json:"generated_by"`
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Benchmarks  map[string]result `json:"benchmarks"`
}

func summarize(r testing.BenchmarkResult) result {
	return result{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
}

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "output JSON path")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	data, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		return err
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data))
	if err != nil {
		return err
	}
	store, err := aipow.NewMapStore(data[0].Attrs)
	if err != nil {
		return err
	}
	fw, err := aipow.New(
		aipow.WithKey(benchKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy2()),
		aipow.WithSource(store),
	)
	if err != nil {
		return err
	}

	verifier, err := aipow.NewVerifier(benchKey)
	if err != nil {
		return err
	}
	issuer, err := aipow.NewIssuer(benchKey)
	if err != nil {
		return err
	}
	ch, err := issuer.Issue("203.0.113.9", 8)
	if err != nil {
		return err
	}
	sol, _, err := aipow.NewSolver().Solve(context.Background(), ch)
	if err != nil {
		return err
	}
	attrs := data[0].Attrs

	d := dump{
		GeneratedBy: "cmd/benchdump",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Benchmarks: map[string]result{
			"Decide": summarize(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"DecideParallel": summarize(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
							b.Error(err) // Fatal must not run off the benchmark goroutine
							return
						}
					}
				})
			})),
			"Verify": summarize(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := verifier.Verify(sol, "203.0.113.9"); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"Score": summarize(testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := model.Score(attrs); err != nil {
						b.Fatal(err)
					}
				}
			})),
		},
	}

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
