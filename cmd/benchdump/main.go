// Command benchdump measures the serving hot path — Decide, Verify, Issue,
// and Score — with testing.Benchmark and writes the results as
// machine-readable JSON (default BENCH_hotpath.json), so successive PRs can
// track the performance trajectory without parsing `go test -bench` text
// output.
//
// Usage:
//
//	go run ./cmd/benchdump [-out BENCH_hotpath.json] [-cpu 1,2,4]
//	go run ./cmd/benchdump -compare BENCH_hotpath.json -max-regress 20%
//
// -cpu additionally runs the parallel Decide benchmark at each listed
// GOMAXPROCS, recording multi-core scaling as "DecideParallel/cpu=N"
// entries.
//
// -compare is the CI regression gate: after measuring, the run is diffed
// against the baseline file and the process exits non-zero when a gated
// benchmark (Decide, DecideTraced, DecideUnderSwap, DecideUnderAdapt,
// DecideWithEvidence, DecideBatch, Verify, Issue) allocates at all or slows
// down by more than -max-regress — or when a within-run ratio gate fails:
// the evidence path beyond 2× plain Decide, the traced path beyond 5% of
// plain Decide, or the batch path not beating the single-op evidence path
// per request.
//
// The capacity section measures million-client cost: bytes and heap
// objects per tracked IP at 1M entries (runtime.ReadMemStats deltas
// around building a full tracker), eviction-under-churn ns/op at
// capacity, and full- vs delta-frame build+encode cost at 1% dirty rows.
// Gated: bytes/IP must stay under a fixed ceiling (and within -max-regress
// of the baseline), and the delta frame must cost at most
// deltaFrameRatioLimit of the full frame.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"

	"aipow"
	"aipow/internal/cluster"
	"aipow/internal/features"
)

var benchKey = []byte("benchmark-hmac-key-32-bytes-long")

// gated are the benchmarks -compare fails the build on: the serving hot
// path that PR 1 made allocation-free, plus Decide under control-plane
// swap churn (PR 3's RCU snapshot redesign must not give the allocation
// freedom back) and Decide with the feedback subsystem's signal plane
// polling at ~1 kHz (the closed loop must cost the serving path
// nothing). Parallel/scaling entries are informational (their ns/op
// depends on core count).
// DecideWithEvidence covers the scoring-verdict stack end to end:
// Observe + Decide (redemption-wrapped verdict scorer, confidence-shaped
// policy, combined source) + Verify with evidence write-back into the
// tracker.
// The cluster plane adds three: FilterSeen is the fleet replay-filter
// probe that rides every clustered Verify (serving path, so it shares
// the 0-alloc rule), while DigestMerge and BloomExchange pin the
// exchange plane's cost — they run at gossip cadence, not per request,
// so they are regression-gated on ns/op only (see allocExempt).
// DecideTraced is Decide with the sampled decision-trace ring attached
// at the default 1-in-1024 rate — the observability tax, pinned both
// here (no allocations) and by the traced_over_decide ratio gate.
var gated = []string{"Decide", "DecideTraced", "DecideUnderSwap", "DecideUnderAdapt", "DecideWithEvidence", "DecideBatch", "Verify", "Issue", "IssueBalloon", "VerifyBalloon", "FilterSeen", "DigestMerge", "BloomExchange"}

// allocExempt marks gated benchmarks that legitimately allocate: the
// exchange plane assembles wire frames off the serving path (once per
// exchange interval per peer), so only its speed is gated.
var allocExempt = map[string]bool{"DigestMerge": true, "BloomExchange": true}

// Ratio gates, checked within the current run (no baseline needed): the
// evidence-carrying stack must stay within evidenceRatioLimit of plain
// Decide, and the batch front door must beat the single-op evidence path
// (a batch that amortizes nothing has no reason to exist).
const evidenceRatioLimit = 2.0

// tracedRatioLimit bounds DecideTraced relative to plain Decide: the
// trace ring's unsampled path is one branch plus one atomic, so the
// whole benchmark — sampled iterations included — must stay within 5%.
const tracedRatioLimit = 1.05

// scalingRatioLimit bounds DecideParallel per-op time at each wider
// GOMAXPROCS relative to the narrowest measured width. Healthy scaling
// holds the ratio at or below ~1 (more cores, same or less time per op);
// lock contention on the serving path shows up as a multiple. The
// headroom above 1 absorbs scheduler noise on single-core runners, where
// every width ratios ~1.0.
const scalingRatioLimit = 1.3

// bytesPerIPCeiling is the absolute memory gate at 1M tracked IPs. The
// slab layout measures ~650 B/IP (fixed record + index map overhead +
// the IP string); the ceiling leaves headroom for map growth phases
// while still failing any return of per-entry heap structures (the old
// pointer-based layout measured ~1237 B/IP).
const bytesPerIPCeiling = 750.0

// deltaFrameRatioLimit bounds the delta frame's build+encode cost
// relative to a full frame at 1% dirty rows: shipping 1% of the rows
// must cost at most 20% of the full-frame work, or delta gossip is not
// pulling its weight.
const deltaFrameRatioLimit = 0.2

// capacitySection is the measured cost of a full tracker at
// million-client scale plus the delta-gossip frame economics.
type capacitySection struct {
	// Entries is the tracker population measured (1M).
	Entries int `json:"entries"`

	// BytesPerIP and HeapObjsPerIP are heap growth per tracked IP while
	// building the full tracker, after a GC on each side.
	BytesPerIP    float64 `json:"bytes_per_ip"`
	HeapObjsPerIP float64 `json:"heap_objs_per_ip"`

	// EvictNsPerOp is Observe cost for a brand-new IP against the full
	// tracker — every op LRU-evicts and recycles a slab slot.
	EvictNsPerOp float64 `json:"evict_ns_per_op"`

	// FrameFullNsPerOp and FrameDeltaNsPerOp are cluster frame build +
	// encode cost over a 50k-row tracker, full versus delta at 1% dirty;
	// FullRows/DeltaRows record the row counts behind them.
	FrameFullNsPerOp  float64 `json:"frame_full_ns_per_op"`
	FrameDeltaNsPerOp float64 `json:"frame_delta_ns_per_op"`
	FullRows          int     `json:"full_rows"`
	DeltaRows         int     `json:"delta_rows"`
}

// result is one benchmark's stable, diffable summary.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"iterations"`
}

type dump struct {
	GeneratedBy string            `json:"generated_by"`
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Benchmarks  map[string]result `json:"benchmarks"`

	// Ratios are derived cross-benchmark figures: the evidence path's
	// cost relative to plain Decide, the batch path's relative to the
	// single-op evidence path, the delta frame's relative to the full
	// frame, and — with -cpu — multi-core scaling of the parallel Decide
	// benchmark relative to its first listed width.
	Ratios map[string]float64 `json:"ratios,omitempty"`

	// Capacity is the million-client memory and delta-gossip section.
	Capacity *capacitySection `json:"capacity,omitempty"`
}

func summarize(r testing.BenchmarkResult) result {
	return result{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		N:           r.N,
	}
}

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "output JSON path")
	cpu := flag.String("cpu", "", "comma-separated GOMAXPROCS list for parallel scaling entries (e.g. 1,2,4)")
	compare := flag.String("compare", "", "baseline JSON to gate against (CI regression check)")
	maxRegress := flag.String("max-regress", "20%", "ns/op regression tolerance for -compare (e.g. 20% or 0.2)")
	runs := flag.Int("runs", 1, "measure each benchmark N times and record the fastest (damps scheduler noise)")
	flag.Parse()
	if err := run(*out, *cpu, *compare, *maxRegress, *runs); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

// parseCPUList parses "1,2,4" into GOMAXPROCS values.
func parseCPUList(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpu entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseRegress parses "20%" or "0.2" into a fraction.
func parseRegress(spec string) (float64, error) {
	s := strings.TrimSpace(spec)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q", spec)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func run(out, cpuSpec, compare, maxRegress string, runs int) error {
	cpus, err := parseCPUList(cpuSpec)
	if err != nil {
		return err
	}
	tolerance, err := parseRegress(maxRegress)
	if err != nil {
		return err
	}
	if runs < 1 {
		return fmt.Errorf("bad -runs %d", runs)
	}
	// bench measures fn `runs` times and keeps the fastest ns/op sample:
	// a minimum over repeats damps scheduler noise without biasing the
	// within-run ratios, which compare minima measured the same way.
	bench := func(fn func(*testing.B)) result {
		best := summarize(testing.Benchmark(fn))
		for i := 1; i < runs; i++ {
			if r := summarize(testing.Benchmark(fn)); r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		return best
	}

	data, err := aipow.GenerateDataset(aipow.DefaultDatasetConfig())
	if err != nil {
		return err
	}
	model, err := aipow.TrainReputationModel(aipow.DatasetToSamples(data))
	if err != nil {
		return err
	}
	store, err := aipow.NewMapStore(data[0].Attrs)
	if err != nil {
		return err
	}
	fw, err := aipow.New(
		aipow.WithKey(benchKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy2()),
		aipow.WithSource(store),
	)
	if err != nil {
		return err
	}

	// Tracing wiring: the same Decide pipeline with a sampled
	// decision-trace ring at the default 1-in-1024 rate, so the
	// traced_over_decide ratio isolates the observability tax.
	tracedFW, err := aipow.New(
		aipow.WithKey(benchKey),
		aipow.WithScorer(model),
		aipow.WithPolicy(aipow.Policy2()),
		aipow.WithSource(store),
		aipow.WithObserveTrace(aipow.NewTraceRing(1024, 256)),
	)
	if err != nil {
		return err
	}

	// Adaptive-feedback wiring: the same Decide pipeline compiled through
	// the control plane with an adapt section whose rule never fires, so
	// the benchmark isolates the signal plane's polling cost (swap churn
	// is DecideUnderSwap's job).
	registry, err := aipow.NewComponentRegistry(benchKey)
	if err != nil {
		return err
	}
	if err := registry.RegisterScorer("model", func(params map[string]float64) (aipow.Scorer, error) {
		return model, nil
	}); err != nil {
		return err
	}
	if err := registry.RegisterSource("store", func(params map[string]float64, _ *aipow.Tracker) (aipow.AttributeSource, error) {
		return store, nil
	}); err != nil {
		return err
	}
	adaptDep, err := aipow.ParseDeployment(`
pipeline bench
  scorer model
  source store
  policy policy2
  adapt capacity 1000000
  adapt interval 1ms
  adapt escalate(when=rate>1e12, policy=policy1, hold=1s)
`)
	if err != nil {
		return err
	}
	gk, err := aipow.NewGatekeeper(registry, adaptDep)
	if err != nil {
		return err
	}
	adaptFW := gk.Route("/", "")

	// Evidence wiring: the full scoring-verdict stack — redemption-wrapped
	// model under a confidence-shaped policy over the combined
	// static+tracker source, with Verify writing solve evidence back —
	// in the recommended production configuration: summary-cached tracker
	// reads plus buffered evidence write-back.
	evTracker, err := aipow.NewTracker(aipow.WithSummaryStaleness(2 * time.Millisecond))
	if err != nil {
		return err
	}
	redeem, err := aipow.NewRedemptionScorer(model)
	if err != nil {
		return err
	}
	shaped, err := aipow.NewConfidenceShapedPolicy(aipow.Policy2(), 5, 0.5)
	if err != nil {
		return err
	}
	evSource, err := aipow.NewCombinedSource(store, evTracker)
	if err != nil {
		return err
	}
	evFW, err := aipow.New(
		aipow.WithKey(benchKey),
		aipow.WithScorer(redeem),
		aipow.WithPolicy(shaped),
		aipow.WithSource(evSource),
		aipow.WithTracker(evTracker),
		aipow.WithEvidenceBuffer(64, time.Millisecond),
		aipow.WithReplayCacheSize(0), // pre-solved challenges, redeemed repeatedly
	)
	if err != nil {
		return err
	}
	defer evFW.Close()
	const evIP = "198.51.100.1"
	evAt := time.Unix(1000, 0)
	if err := evFW.Observe(aipow.RequestInfo{IP: evIP, Path: "/api", At: evAt}); err != nil {
		return err
	}
	evDec, err := evFW.Decide(aipow.RequestContext{IP: evIP})
	if err != nil {
		return err
	}
	evSol, _, err := aipow.NewSolver().Solve(context.Background(), evDec.Challenge)
	if err != nil {
		return err
	}

	// Batch front-door wiring over the same evidence stack: 64-request
	// batches cycling 16 distinct clients, one pre-solved challenge per
	// client redeemed repeatedly (replay cache is off above).
	const batchSize, batchClients = 64, 16
	batchReqs := make([]aipow.RequestContext, batchSize)
	batchObs := make([]aipow.RequestInfo, batchSize)
	batchBindings := make([]string, batchSize)
	for i := range batchReqs {
		ip := fmt.Sprintf("198.51.100.%d", 10+i%batchClients)
		batchReqs[i] = aipow.RequestContext{IP: ip}
		batchObs[i] = aipow.RequestInfo{IP: ip, Path: "/api", At: evAt}
		batchBindings[i] = ip
	}
	if err := evFW.ObserveBatch(batchObs); err != nil {
		return err
	}
	batchDecs, err := evFW.DecideBatch(batchReqs, nil)
	if err != nil {
		return err
	}
	batchSols := make([]aipow.Solution, batchSize)
	batchSolver := aipow.NewSolver()
	for i := range batchSols {
		if i < batchClients {
			sol, _, err := batchSolver.Solve(context.Background(), batchDecs[i].Challenge)
			if err != nil {
				return err
			}
			batchSols[i] = sol
		} else {
			batchSols[i] = batchSols[i%batchClients]
		}
	}
	batchVerrs := make([]error, batchSize)

	verifier, err := aipow.NewVerifier(benchKey)
	if err != nil {
		return err
	}
	issuer, err := aipow.NewIssuer(benchKey)
	if err != nil {
		return err
	}
	ch, err := issuer.Issue("203.0.113.9", 8)
	if err != nil {
		return err
	}
	sol, _, err := aipow.NewSolver().Solve(context.Background(), ch)
	if err != nil {
		return err
	}
	// The memory-hard backend's issuance/verification pair, gated beside
	// the hashcash hot path: the defaults (space=256, time=2) price the
	// attacker; what the gate pins is the server-side cost of issuing
	// and checking a single balloon token.
	balloonBackend, err := aipow.NewBalloon(0, 0)
	if err != nil {
		return err
	}
	balloonVerifier, err := aipow.NewVerifier(benchKey, aipow.WithVerifierBackend(balloonBackend))
	if err != nil {
		return err
	}
	balloonIssuer, err := aipow.NewIssuer(benchKey, aipow.WithIssuerBackend(balloonBackend))
	if err != nil {
		return err
	}
	balloonCh, err := balloonIssuer.Issue("203.0.113.9", 2)
	if err != nil {
		return err
	}
	balloonSol, _, err := aipow.NewSolver().Solve(context.Background(), balloonCh)
	if err != nil {
		return err
	}
	attrs := data[0].Attrs

	// Distributed defense plane: two in-process fleet nodes built from
	// cluster specs. Node B carries a populated behavior tracker and a
	// Bloom ring of redeemed tags; node A absorbs B's state — the same
	// merge every fleet member performs once per exchange interval.
	newClusterNode := func(origin string) (*aipow.Gatekeeper, error) {
		reg, err := aipow.NewComponentRegistry(benchKey, aipow.WithRegistryNodeID(origin))
		if err != nil {
			return nil, err
		}
		err = reg.RegisterScorer("bench", func(map[string]float64) (aipow.Scorer, error) {
			return model, nil
		})
		if err != nil {
			return nil, err
		}
		dep, err := aipow.ParseDeployment("pipeline edge\n scorer bench\n policy policy1\n cluster\n")
		if err != nil {
			return nil, err
		}
		return aipow.NewGatekeeper(reg, dep)
	}
	gkNodeA, err := newClusterNode("bench-a")
	if err != nil {
		return err
	}
	defer gkNodeA.Close()
	gkNodeB, err := newClusterNode("bench-b")
	if err != nil {
		return err
	}
	defer gkNodeB.Close()
	pipeA, _ := gkNodeA.Pipeline("edge")
	pipeB, _ := gkNodeB.Pipeline("edge")
	nodeA, nodeB := pipeA.ClusterNode(), pipeB.ClusterNode()
	fwNodeB := gkNodeB.Route("/", "")
	for i := 0; i < 256; i++ {
		if _, err := fwNodeB.Decide(aipow.RequestContext{IP: fmt.Sprintf("198.51.%d.%d", i/250, i%250+1)}); err != nil {
			return err
		}
	}
	var clusterTag [32]byte
	for i := 0; i < 4096; i++ {
		clusterTag[0], clusterTag[1] = byte(i), byte(i>>8)
		nodeB.RedeemedTag(clusterTag, time.Now().Add(2*time.Minute))
	}
	peerFrame := nodeB.Frame()
	nodeA.ExchangeWith(nodeB) // so FilterSeen probes a populated, merged ring
	clusterTag[0], clusterTag[1] = 1, 0
	if !nodeA.SeenTag(clusterTag) {
		return fmt.Errorf("cluster bench setup: merged ring lost a redeemed tag")
	}

	decideParallel := func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
					b.Error(err) // Fatal must not run off the benchmark goroutine
					return
				}
			}
		})
	}

	d := dump{
		GeneratedBy: "cmd/benchdump",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Benchmarks: map[string]result{
			"Decide": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
						b.Fatal(err)
					}
				}
			})),
			// Decide with the decision-trace ring attached: ~0.1% of
			// iterations write a fixed-size record into a preallocated
			// slot, the rest pay one branch and one atomic. Gated like
			// Decide, plus the traced_over_decide ratio below.
			"DecideTraced": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := tracedFW.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"DecideParallel": bench(decideParallel),
			// Decide while a background goroutine hot-swaps the policy at
			// ~1 kHz: the RCU snapshot design means swap churn must cost
			// the serving path nothing — same ns/op class, still zero
			// allocations. Gated like Decide.
			"DecideUnderSwap": bench((func(b *testing.B) {
				stop := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						pol := aipow.Policy2()
						if i%2 == 1 {
							pol = aipow.Policy1()
						}
						if err := fw.SwapPolicy(pol); err != nil {
							b.Error(err)
							return
						}
						time.Sleep(time.Millisecond)
					}
				}()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := fw.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				close(stop)
				<-done
				// Leave the framework on the baseline policy for any
				// benchmark measured after this one.
				if err := fw.SwapPolicy(aipow.Policy2()); err != nil {
					b.Fatal(err)
				}
			})),
			// Decide with the feedback controller stepping at ~1 kHz: the
			// signal plane reads counters by polling, so the serving path
			// must stay allocation-free at an unchanged ns/op class.
			"DecideUnderAdapt": bench((func(b *testing.B) {
				stop := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := gk.StepControllers(time.Now()); err != nil {
							b.Error(err)
							return
						}
						time.Sleep(time.Millisecond)
					}
				}()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := adaptFW.Decide(aipow.RequestContext{IP: "198.51.100.1"}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				close(stop)
				<-done
			})),
			// The scoring-verdict stack end to end: behavioral observation,
			// confidence-carrying decision (redemption + shaping on-path),
			// and verification with evidence write-back. Gated: the whole
			// loop must stay allocation-free.
			"DecideWithEvidence": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := evFW.Observe(aipow.RequestInfo{IP: evIP, Path: "/api", At: evAt}); err != nil {
						b.Fatal(err)
					}
					if _, err := evFW.Decide(aipow.RequestContext{IP: evIP}); err != nil {
						b.Fatal(err)
					}
					if err := evFW.Verify(evSol, evIP); err != nil {
						b.Fatal(err)
					}
				}
			})),
			// The same evidence loop through the batch front door —
			// ObserveBatch, DecideBatch, VerifyBatch over 64-request
			// batches — at per-request granularity (b.N counts requests,
			// not batches), so its ns/op is directly comparable to
			// DecideWithEvidence and gated below it.
			"DecideBatch": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i += batchSize {
					n := min(batchSize, b.N-i)
					if err := evFW.ObserveBatch(batchObs[:n]); err != nil {
						b.Fatal(err)
					}
					var err error
					if batchDecs, err = evFW.DecideBatch(batchReqs[:n], batchDecs); err != nil {
						b.Fatal(err)
					}
					if batchVerrs, err = evFW.VerifyBatch(batchSols[:n], batchBindings[:n], batchVerrs); err != nil {
						b.Fatal(err)
					}
					for _, verr := range batchVerrs {
						if verr != nil {
							b.Fatal(verr)
						}
					}
				}
			})),
			"Issue": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := issuer.Issue("203.0.113.9", 8); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"Verify": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := verifier.Verify(sol, "203.0.113.9"); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"IssueBalloon": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := balloonIssuer.Issue("203.0.113.9", 2); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"VerifyBalloon": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := balloonVerifier.Verify(balloonSol, "203.0.113.9"); err != nil {
						b.Fatal(err)
					}
				}
			})),
			"Score": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := model.Score(attrs); err != nil {
						b.Fatal(err)
					}
				}
			})),
			// The serving-path fleet replay-filter probe: every Verify on
			// a clustered pipeline pays exactly this before redeeming.
			// Gated allocation-free like the rest of the hot path.
			"FilterSeen": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if !nodeA.SeenTag(clusterTag) {
						b.Fatal("merged ring lost a redeemed tag")
					}
				}
			})),
			// Absorbing one peer frame: counters pointwise-max, reputation
			// digest CRDT-merge into the tracker, Bloom ring OR-merge.
			// Idempotent, so re-absorbing the same frame is steady-state.
			"DigestMerge": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					nodeA.Absorb(peerFrame)
				}
			})),
			// One full in-process exchange round: assemble the peer's
			// frame and merge it, rings included — the per-interval,
			// per-peer cost of fleet membership.
			"BloomExchange": bench((func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					nodeA.ExchangeWith(nodeB)
				}
			})),
		},
	}

	// Multi-core scaling entries: rerun the parallel Decide benchmark at
	// each requested GOMAXPROCS. Flat-or-better ns/op as cores grow is the
	// "no lock collapse" evidence the ROADMAP asks to record.
	prev := runtime.GOMAXPROCS(0)
	for _, n := range cpus {
		runtime.GOMAXPROCS(n)
		d.Benchmarks[fmt.Sprintf("DecideParallel/cpu=%d", n)] = bench(decideParallel)
	}
	runtime.GOMAXPROCS(prev)

	// Derived ratios: the evidence tax over plain Decide, the batch
	// amortization over the single-op evidence path, and per-op scaling
	// across the -cpu widths (≤ 1 means flat-or-better as cores grow).
	d.Ratios = map[string]float64{
		"evidence_over_decide": d.Benchmarks["DecideWithEvidence"].NsPerOp / d.Benchmarks["Decide"].NsPerOp,
		"batch_over_evidence":  d.Benchmarks["DecideBatch"].NsPerOp / d.Benchmarks["DecideWithEvidence"].NsPerOp,
		"traced_over_decide":   d.Benchmarks["DecideTraced"].NsPerOp / d.Benchmarks["Decide"].NsPerOp,
	}
	if len(cpus) > 0 {
		base := d.Benchmarks[fmt.Sprintf("DecideParallel/cpu=%d", cpus[0])].NsPerOp
		for _, n := range cpus[1:] {
			d.Ratios[fmt.Sprintf("scaling_cpu%d_over_cpu%d", n, cpus[0])] =
				d.Benchmarks[fmt.Sprintf("DecideParallel/cpu=%d", n)].NsPerOp / base
		}
	}

	// Capacity measurement last: building the 1M-entry tracker moves the
	// heap by ~700 MB, which must not sit live under the hot-path
	// benchmarks above.
	capSec, err := measureCapacity(bench)
	if err != nil {
		return err
	}
	d.Capacity = capSec
	d.Ratios["delta_over_full_frame"] = capSec.FrameDeltaNsPerOp / capSec.FrameFullNsPerOp

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if compare != "" {
		return gate(d, compare, tolerance)
	}
	return nil
}

// capIP formats the i-th synthetic client address into buf (reused across
// calls; only the returned string allocates — the cost any new-IP insert
// pays for its map key).
func capIP(buf []byte, prefix string, i uint64) string {
	buf = append(buf[:0], prefix...)
	buf = strconv.AppendUint(buf, i>>16&255, 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, i>>8&255, 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, i&255, 10)
	return string(buf)
}

// measureCapacity builds the capacity section: heap cost per tracked IP
// at 1M entries, eviction churn at capacity, and full- vs delta-frame
// cost at 1% dirty rows on a 50k-row tracker (kept under the wire-format
// row bound so the full frame is genuinely full).
func measureCapacity(bench func(fn func(*testing.B)) result) (*capacitySection, error) {
	const entries = 1 << 20
	at := time.Unix(1700000000, 0)
	var ipBuf [32]byte
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	tr, err := features.NewTracker(features.WithCapacity(entries))
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < entries; i++ {
		ip := capIP(ipBuf[:], "10.", i)
		if err := tr.Observe(features.RequestInfo{IP: ip, Path: "/api", At: at}); err != nil {
			return nil, err
		}
		tr.RecordVerify(ip, 12, true, at)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	cs := &capacitySection{
		Entries:       entries,
		BytesPerIP:    float64(after.HeapAlloc-before.HeapAlloc) / entries,
		HeapObjsPerIP: float64(after.HeapObjects-before.HeapObjects) / entries,
	}

	// Eviction under churn: every op observes a never-seen IP against the
	// full tracker, so each insert LRU-evicts a victim and recycles its
	// slab slot.
	var churn uint64
	cs.EvictNsPerOp = bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			churn++
			if err := tr.Observe(features.RequestInfo{IP: capIP(ipBuf[:], "172.16.", churn), Path: "/api", At: at}); err != nil {
				b.Fatal(err)
			}
		}
	}).NsPerOp

	// Frame economics: a 50k-row tracker behind a cluster node with the
	// row cap lifted to the wire bound, so the full frame really carries
	// all rows. 1% of the rows are re-verified after the watermark cut;
	// the delta frame ships only those.
	const frameEntries = 50000
	ftr, err := features.NewTracker(features.WithCapacity(frameEntries))
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < frameEntries; i++ {
		ftr.RecordVerify(capIP(ipBuf[:], "10.", i), 10, true, at)
	}
	node, err := cluster.NewNode(cluster.Config{Origin: "bench-capacity", MaxRows: 1 << 16})
	if err != nil {
		return nil, err
	}
	node.BindLocal(nil, ftr)
	_, watermark, _ := ftr.ExportEvidenceSince(nil, 1<<16, 0)
	for i := uint64(0); i < frameEntries/100; i++ {
		ftr.RecordVerify(capIP(ipBuf[:], "10.", i), 10, true, at.Add(time.Second))
	}
	full := node.FrameSince(0)
	delta := node.FrameSince(watermark)
	cs.FullRows = len(full.Origins[0].Rows)
	cs.DeltaRows = len(delta.Origins[0].Rows)
	if !delta.Delta || cs.DeltaRows == 0 || cs.DeltaRows >= cs.FullRows {
		return nil, fmt.Errorf("capacity: delta frame degraded (delta=%v rows %d of %d) — ratio would be meaningless",
			delta.Delta, cs.DeltaRows, cs.FullRows)
	}
	frameCost := func(since uint64) float64 {
		return bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := node.FrameSince(since)
				if _, err := cluster.EncodeFrame(f, benchKey); err != nil {
					b.Fatal(err)
				}
			}
		}).NsPerOp
	}
	cs.FrameFullNsPerOp = frameCost(0)
	cs.FrameDeltaNsPerOp = frameCost(watermark)
	return cs, nil
}

// gate diffs the fresh run against the baseline file and fails on hot-path
// regressions: any allocation at all, or ns/op beyond baseline×(1+tol).
func gate(cur dump, baselinePath string, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base dump
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}

	var violations []string
	for _, name := range gated {
		c, ok := cur.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if c.AllocsPerOp > 0 && !allocExempt[name] {
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op (hot path must stay allocation-free)", name, c.AllocsPerOp))
		}
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("compare: %-8s no baseline entry, skipping ns/op gate\n", name)
			continue
		}
		limit := b.NsPerOp * (1 + tol)
		verdict := "ok"
		if c.NsPerOp > limit {
			verdict = "REGRESSION"
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (limit %.0f, +%.0f%%)",
					name, c.NsPerOp, b.NsPerOp, limit, (c.NsPerOp/b.NsPerOp-1)*100))
		}
		fmt.Printf("compare: %-8s %8.0f ns/op (baseline %8.0f, limit %8.0f) %d allocs/op  %s\n",
			name, c.NsPerOp, b.NsPerOp, limit, c.AllocsPerOp, verdict)
	}
	// Ratio gates, judged within the current run: they pin structural
	// properties (amortization exists, the evidence tax is bounded), so a
	// uniformly slower or faster machine cannot skew them.
	if r := cur.Ratios["evidence_over_decide"]; r > evidenceRatioLimit {
		violations = append(violations,
			fmt.Sprintf("DecideWithEvidence/Decide ratio %.2f exceeds %.1f", r, evidenceRatioLimit))
	} else {
		fmt.Printf("compare: evidence/decide ratio %.2f (limit %.1f) ok\n", r, evidenceRatioLimit)
	}
	if r := cur.Ratios["traced_over_decide"]; r > tracedRatioLimit {
		violations = append(violations,
			fmt.Sprintf("DecideTraced/Decide ratio %.3f exceeds %.2f (tracing must stay near-free)", r, tracedRatioLimit))
	} else {
		fmt.Printf("compare: traced/decide ratio %.3f (limit %.2f) ok\n", r, tracedRatioLimit)
	}
	if r := cur.Ratios["batch_over_evidence"]; r >= 1 {
		violations = append(violations,
			fmt.Sprintf("DecideBatch/DecideWithEvidence ratio %.2f; the batch path must be cheaper per op", r))
	} else {
		fmt.Printf("compare: batch/evidence ratio %.2f (limit 1.0) ok\n", cur.Ratios["batch_over_evidence"])
	}
	// Capacity gates: the absolute bytes/IP ceiling, a baseline-relative
	// memory regression check (same tolerance as ns/op), and the delta
	// frame earning its keep at 1% dirty.
	if cur.Capacity == nil {
		violations = append(violations, "capacity: section missing from current run")
	} else {
		c := cur.Capacity
		if c.BytesPerIP > bytesPerIPCeiling {
			violations = append(violations,
				fmt.Sprintf("capacity: %.1f bytes/IP exceeds ceiling %.0f at %d entries", c.BytesPerIP, bytesPerIPCeiling, c.Entries))
		} else {
			fmt.Printf("compare: bytes/IP %.1f (ceiling %.0f) at %d entries ok\n", c.BytesPerIP, bytesPerIPCeiling, c.Entries)
		}
		if base.Capacity != nil {
			limit := base.Capacity.BytesPerIP * (1 + tol)
			if c.BytesPerIP > limit {
				violations = append(violations,
					fmt.Sprintf("capacity: %.1f bytes/IP vs baseline %.1f (limit %.1f)", c.BytesPerIP, base.Capacity.BytesPerIP, limit))
			}
		}
	}
	if r, ok := cur.Ratios["delta_over_full_frame"]; !ok {
		violations = append(violations, "capacity: delta_over_full_frame ratio missing")
	} else if r > deltaFrameRatioLimit {
		violations = append(violations,
			fmt.Sprintf("capacity: delta/full frame ratio %.3f exceeds %.1f at 1%% dirty", r, deltaFrameRatioLimit))
	} else {
		fmt.Printf("compare: delta/full frame ratio %.3f (limit %.1f) ok\n", r, deltaFrameRatioLimit)
	}
	// Multi-core scaling is a gated claim, not an uploaded artifact: a
	// wider GOMAXPROCS must never cost materially more per op than the
	// narrowest width (contention collapse on the lock-free hot path).
	for _, name := range slices.Sorted(maps.Keys(cur.Ratios)) {
		if !strings.HasPrefix(name, "scaling_") {
			continue
		}
		if r := cur.Ratios[name]; r > scalingRatioLimit {
			violations = append(violations,
				fmt.Sprintf("%s %.2f exceeds %.1f (parallel Decide degrades with cores)", name, r, scalingRatioLimit))
		} else {
			fmt.Printf("compare: %s %.2f (limit %.1f) ok\n", name, r, scalingRatioLimit)
		}
	}

	if len(violations) > 0 {
		return fmt.Errorf("hot-path regression gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	fmt.Println("compare: hot-path gate passed")
	return nil
}
