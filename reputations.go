package aipow

import (
	"io"

	"aipow/internal/dataset"
	"aipow/internal/reputation"
)

// ReputationModel is a trained DAbR-style reputation scorer: Euclidean
// distance to learned malicious attribute centroids, calibrated to [0, 10].
// It satisfies Scorer.
type ReputationModel = reputation.Model

// ReputationSample is one labeled training observation.
type ReputationSample = reputation.Sample

// TrainOption configures TrainReputationModel.
type TrainOption = reputation.TrainOption

// TrainReputationModel fits the DAbR-style scorer on labeled samples.
func TrainReputationModel(samples []ReputationSample, opts ...TrainOption) (*ReputationModel, error) {
	return reputation.Train(samples, opts...)
}

// WithClusters sets the number of malicious centroids (default 3).
func WithClusters(k int) TrainOption { return reputation.WithClusters(k) }

// WithTrainSeed makes training deterministic.
func WithTrainSeed(seed uint64) TrainOption { return reputation.WithSeed(seed) }

// LoadReputationModel reads a model saved with ReputationModel.Save.
func LoadReputationModel(r io.Reader) (*ReputationModel, error) {
	return reputation.Load(r)
}

// KNNScorer is the kNN alternative reputation scorer.
type KNNScorer = reputation.KNN

// RedemptionScorer wraps a scorer with behavioral redemption: IPs with
// sustained verified-solve evidence — and otherwise unremarkable behavior
// — earn a decaying attenuation of their effective score, so a misscored
// legitimate client works its way out of the false-positive tail. The
// evidence is written by Framework.Verify into the attached Tracker; the
// decay half-life is the tracker's (WithEvidenceHalfLife).
type RedemptionScorer = reputation.Decay

// RedemptionOption configures NewRedemptionScorer.
type RedemptionOption = reputation.DecayOption

// NewRedemptionScorer wraps inner (which must support the vector fast
// path, e.g. a trained ReputationModel) with behavioral redemption.
func NewRedemptionScorer(inner VectorScorer, opts ...RedemptionOption) (*RedemptionScorer, error) {
	return reputation.NewDecay(inner, opts...)
}

// WithMaxRedemption caps the score attenuation evidence can earn
// (default 6).
func WithMaxRedemption(drop float64) RedemptionOption {
	return reputation.WithMaxRedemption(drop)
}

// WithRedemptionHalfCredit sets the solve credit at which half the
// maximum redemption applies (default 26).
func WithRedemptionHalfCredit(credit float64) RedemptionOption {
	return reputation.WithHalfCredit(credit)
}

// NewKNNScorer builds a kNN scorer over labeled samples.
func NewKNNScorer(samples []ReputationSample, k int) (*KNNScorer, error) {
	return reputation.NewKNN(samples, k)
}

// Evaluation is a confusion matrix with accuracy/precision/recall/F1.
type Evaluation = reputation.Evaluation

// EvaluateScorer classifies samples (malicious iff score ≥ threshold) and
// tallies quality against ground truth.
func EvaluateScorer(s Scorer, samples []ReputationSample, threshold float64) (Evaluation, error) {
	return reputation.Evaluate(scorerAdapter{s}, samples, threshold)
}

// scorerAdapter bridges the public Scorer alias to the reputation
// package's interface (identical shape).
type scorerAdapter struct{ s Scorer }

func (a scorerAdapter) Score(attrs map[string]float64) (float64, error) {
	return a.s.Score(attrs)
}

// DatasetConfig parameterizes the synthetic Talos-like IP attribute feed.
type DatasetConfig = dataset.Config

// DatasetSample is one labeled IP observation.
type DatasetSample = dataset.Sample

// DefaultDatasetConfig is the calibrated configuration under which the
// trained model reproduces DAbR's ~80% accuracy.
func DefaultDatasetConfig() DatasetConfig { return dataset.DefaultConfig() }

// GenerateDataset synthesizes a labeled IP attribute dataset.
func GenerateDataset(cfg DatasetConfig) ([]DatasetSample, error) {
	return dataset.Generate(cfg)
}

// DatasetToSamples adapts dataset samples to training samples.
func DatasetToSamples(in []DatasetSample) []ReputationSample {
	out := make([]ReputationSample, len(in))
	for i, s := range in {
		out[i] = ReputationSample{Attrs: s.Attrs, Malicious: s.Malicious}
	}
	return out
}
